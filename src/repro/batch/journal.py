"""The ``repro-batch/v1`` checkpoint journal.

A batch run appends one JSON line per event to its journal file, giving
the engine crash-safe, resumable bookkeeping:

* line 1 — a ``header`` record stamping the schema, the run
  configuration, and the set of job spec digests;
* one ``result`` record per finished job (appended *and fsynced* the
  moment the job settles, so a killed engine loses at most the job that
  was in flight);
* a ``resume`` marker each time a later run re-opens the journal.

On ``--resume`` the engine replays the journal: a job is *skipped* only
when its recorded spec digest matches the current job spec, its status
is ``ok``, and — when the run writes netlist artifacts — the artifact
file still hashes to the recorded digest.  Any mismatch (edited digest,
tampered or missing artifact, changed options) re-runs the job, so the
journal can never smuggle a stale or forged result into a fresh run.

Like the other versioned exporters (``repro-trace/v1``,
``repro-metrics/v1``, ``repro-bench-mapping/v1``, ``repro-explain/v1``)
the schema is validated by a dedicated checker,
:func:`validate_journal`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

BATCH_SCHEMA = "repro-batch/v1"

#: Terminal job statuses a ``result`` record may carry.
RESULT_STATUSES = ("ok", "failed", "crashed", "timeout")


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of a file's bytes."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class JournalError(ValueError):
    """A journal failed schema validation."""


@dataclass
class JournalWriter:
    """Append-only writer; every record is flushed and fsynced."""

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def repair_tail(self) -> int:
        """Truncate a torn final line left by a killed writer.

        Appending after an unterminated (or unparseable) tail would
        merge the next record into the garbage, so a resuming engine
        repairs the tail before writing anything.  Returns the number of
        bytes dropped (0 for a clean journal).
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        lines = data.split(b"\n")
        # A file ending in "\n" splits to a trailing empty segment; a
        # torn file's trailing segment is the partial record.  Either
        # way the final segment is dropped and the newline restored by
        # the join below.
        kept = lines[:-1]
        while kept:
            try:
                json.loads(kept[-1].decode("utf-8"))
                break
            except (UnicodeDecodeError, ValueError):
                kept.pop()
        repaired = b"\n".join(kept) + b"\n" if kept else b""
        if repaired == data:
            return 0
        with open(self.path, "wb") as handle:
            handle.write(repaired)
            handle.flush()
            os.fsync(handle.fileno())
        return len(data) - len(repaired)

    def write_header(self, jobs: dict[str, str], config: dict) -> None:
        """Start a journal: job id → spec digest plus the run config."""
        self._append(
            {
                "kind": "header",
                "schema": BATCH_SCHEMA,
                "created": time.time(),
                "jobs": jobs,
                "config": config,
            }
        )

    def write_resume(self, skipped: int, rerun: int) -> None:
        self._append(
            {
                "kind": "resume",
                "time": time.time(),
                "skipped": skipped,
                "rerun": rerun,
            }
        )

    def write_result(self, record: dict) -> None:
        record = dict(record, kind="result")
        if record.get("status") not in RESULT_STATUSES:
            raise JournalError(
                f"result status {record.get('status')!r} not in "
                f"{RESULT_STATUSES}"
            )
        if "job_id" not in record or "spec" not in record:
            raise JournalError("result records need job_id and spec fields")
        self._append(record)


def read_journal(path: Union[str, Path]) -> tuple[dict, dict[str, dict]]:
    """Parse a journal into (header, latest result per job id).

    A truncated final line — the signature of a killed engine — is
    tolerated and ignored; any other malformed content raises
    :class:`JournalError`.  Later ``result`` records for the same job id
    supersede earlier ones (a resumed run re-running a tampered job
    appends a fresh record rather than editing history).
    """
    path = Path(path)
    header: Optional[dict] = None
    results: dict[str, dict] = {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = [
            (number, line)
            for number, line in enumerate(handle.read().split("\n"), start=1)
            if line.strip()
        ]
    for position, (number, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                continue  # torn tail from a killed writer
            # A torn line *followed by* valid ones means the file was
            # edited, not truncated — surface it.
            raise JournalError(f"{path}: malformed journal line {number}")
        if not isinstance(record, dict):
            raise JournalError(f"{path}: journal line {number} is not an object")
        kind = record.get("kind")
        if kind == "header":
            if record.get("schema") != BATCH_SCHEMA:
                raise JournalError(
                    f"{path}: schema {record.get('schema')!r} is not "
                    f"{BATCH_SCHEMA!r}"
                )
            if header is None:
                header = record
        elif kind == "result":
            results[str(record.get("job_id"))] = record
        elif kind != "resume":
            raise JournalError(f"{path}: unknown record kind {kind!r}")
    if header is None:
        raise JournalError(f"{path}: no {BATCH_SCHEMA} header record")
    return header, results


def validate_journal(path: Union[str, Path]) -> tuple[dict, dict[str, dict]]:
    """Full schema check of a journal; returns (header, results).

    Raises :class:`JournalError` when the header is missing or any
    record is malformed — the checkpoint/resume tests and ``repro batch
    --check`` both go through here.
    """
    header, results = read_journal(path)
    jobs = header.get("jobs")
    if not isinstance(jobs, dict):
        raise JournalError(f"{path}: header carries no job table")
    for job_id, record in results.items():
        if record.get("status") not in RESULT_STATUSES:
            raise JournalError(
                f"{path}: job {job_id!r} has unknown status "
                f"{record.get('status')!r}"
            )
        if record.get("status") == "ok" and not record.get("digest"):
            raise JournalError(f"{path}: ok job {job_id!r} without a digest")
        if job_id in jobs and record.get("spec") != jobs[job_id]:
            raise JournalError(
                f"{path}: job {job_id!r} result spec digest does not match "
                "the header's job table"
            )
    return header, results


def check_artifacts(
    results: dict[str, dict], output_dir: Optional[Union[str, Path]]
) -> list[str]:
    """Verify every ``ok`` result's artifact digest; returns problems.

    Used by ``repro batch --check``: an edited/tampered artifact (or an
    edited digest in the journal — the two are indistinguishable and
    equally disqualifying) or a missing file is reported; jobs without a
    recorded artifact are skipped.
    """
    problems = []
    for job_id, record in sorted(results.items()):
        if record.get("status") != "ok":
            problems.append(
                f"{job_id}: status {record.get('status')} "
                f"({record.get('error') or 'no error recorded'})"
            )
            continue
        artifact = record.get("artifact")
        if not artifact:
            continue
        path = Path(output_dir or ".") / artifact
        if not path.exists():
            problems.append(f"{job_id}: artifact {artifact} is missing")
        elif file_digest(path) != record.get("digest"):
            problems.append(
                f"{job_id}: artifact {artifact} does not hash to the "
                "journalled digest (tampered or corrupted)"
            )
    return problems
