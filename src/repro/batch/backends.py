"""Executor backends: ``serial`` | ``threads`` | ``processes``.

The engine schedules against one tiny interface —
:class:`ExecutorBackend` — so scheduling, retry, deadline, and journal
logic are written once and the choice of execution substrate is a flag:

* ``serial``    — jobs run inline on the coordinator thread; submission
  returns an already-settled future.  Zero concurrency, zero overhead,
  and the reference behaviour every other backend must reproduce
  byte-for-byte.
* ``threads``   — a :class:`~concurrent.futures.ThreadPoolExecutor`;
  cheap to spin up but GIL-bound for the covering DP, so it only
  overlaps I/O (annotation-cache reads, journal writes).
* ``processes`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  true parallelism and *crash isolation*: a worker that dies (segfault,
  OOM-kill, ``os._exit``) breaks the pool, which the engine observes as
  :class:`BrokenExecutor` on the in-flight futures and answers with
  :meth:`ExecutorBackend.restart` — a kill-and-respawn that no other
  job's state survives into.

Job payloads and results must be picklable for the process backend;
the other two inherit the same discipline so switching backends can
never change behaviour.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Optional

from .jobs import execute_job

BACKEND_NAMES = ("serial", "threads", "processes")


class ExecutorBackend:
    """The minimal executor surface the batch engine schedules against."""

    name: str = "abstract"
    #: Whether a dead worker takes only itself down (process isolation).
    supports_crash_isolation: bool = False

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)

    def start(self) -> None:
        """Bring the pool up (idempotent)."""

    def submit(self, *args, **kwargs) -> Future:
        """Schedule one :func:`~repro.batch.jobs.execute_job` call."""
        return self.submit_call(execute_job, *args, **kwargs)

    def submit_call(self, fn, /, *args, **kwargs) -> Future:
        """Schedule an arbitrary callable on the pool.

        The mapping service dispatches its per-request worker through
        this generic hook so serving and batch share one pool
        abstraction; on the process backend ``fn`` must be a picklable
        module-level function.
        """
        raise NotImplementedError

    def restart(self) -> None:
        """Tear down a (possibly broken) pool and bring up a fresh one.

        In-flight work is abandoned; the engine reschedules it.  A
        no-op for backends without a pool to poison.
        """

    def shutdown(self) -> None:
        """Release the pool (idempotent)."""


class SerialBackend(ExecutorBackend):
    """Inline execution; the deterministic reference backend."""

    name = "serial"

    def submit_call(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future


class ThreadBackend(ExecutorBackend):
    """Thread-pool execution (overlaps I/O; covering stays GIL-bound)."""

    name = "threads"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-batch"
            )

    def submit_call(self, fn, /, *args, **kwargs) -> Future:
        self.start()
        assert self._pool is not None
        return self._pool.submit(fn, *args, **kwargs)

    def restart(self) -> None:
        # Threads cannot be killed; abandon the pool without joining the
        # stragglers and start fresh.
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.start()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


class ProcessBackend(ExecutorBackend):
    """Process-pool execution with kill-and-respawn crash recovery."""

    name = "processes"
    supports_crash_isolation = True

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _context():
        # fork is the fast path (workers inherit synthesized benchmarks
        # and loaded libraries); fall back to the platform default where
        # fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context()
            )

    def submit_call(self, fn, /, *args, **kwargs) -> Future:
        self.start()
        assert self._pool is not None
        return self._pool.submit(fn, *args, **kwargs)

    def restart(self) -> None:
        if self._pool is not None:
            # A broken pool's processes are already dead; a live pool's
            # are killed so a hung worker cannot outlive its job.
            self._pool.shutdown(wait=False, cancel_futures=True)
            processes = getattr(self._pool, "_processes", None) or {}
            for process in list(processes.values()):
                if process.is_alive():  # pragma: no cover - hard-timeout path
                    process.terminate()
            self._pool = None
        self.start()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


_BACKENDS: dict[str, Callable[[int], ExecutorBackend]] = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def create_backend(name: str, workers: int = 1) -> ExecutorBackend:
    """Instantiate a backend by flag value (``serial|threads|processes``)."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; one of {BACKEND_NAMES}"
        ) from None
    return factory(workers)


__all__ = [
    "BACKEND_NAMES",
    "BrokenExecutor",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "create_backend",
]
