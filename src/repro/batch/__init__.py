"""Fault-tolerant batch mapping: many (design, library) jobs, one engine.

Public surface::

    from repro.batch import BatchJob, BatchConfig, run_batch

    jobs = [BatchJob(design=name, library="CMOS3") for name in catalog]
    report = run_batch(jobs, BatchConfig(backend="processes", workers=4,
                                         deadline=60, retries=2))

See :mod:`repro.batch.engine` for the robustness guarantees (deadlines
with trivial-cover fallback, retry with exponential backoff, crash
isolation, digest-verified ``repro-batch/v1`` checkpoint journal) and
``repro batch --help`` for the CLI.
"""

from .backends import (  # noqa: F401
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)
from .engine import (  # noqa: F401
    BatchConfig,
    BatchConfigError,
    BatchReport,
    run_batch,
)
from .jobs import BatchJob, execute_job, netlist_blif, text_digest  # noqa: F401
from .journal import (  # noqa: F401
    BATCH_SCHEMA,
    JournalError,
    check_artifacts,
    file_digest,
    read_journal,
    validate_journal,
)

__all__ = [
    "BACKEND_NAMES",
    "BATCH_SCHEMA",
    "BatchConfig",
    "BatchConfigError",
    "BatchJob",
    "BatchReport",
    "ExecutorBackend",
    "JournalError",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "check_artifacts",
    "create_backend",
    "execute_job",
    "file_digest",
    "netlist_blif",
    "read_journal",
    "run_batch",
    "text_digest",
    "validate_journal",
]
