"""Baseline diffing for ``BENCH_mapping.json`` snapshots.

``compare_snapshots`` is the policy behind
``benchmarks/check_regression.py``: *quality* fields (area, delay,
cell counts, cell usage, covering work, verification verdicts) must
match the baseline exactly — any drift means the mapper changed
behaviour and the baseline must be regenerated deliberately — while
*timing* fields may grow up to a relative tolerance before they count
as a regression.

Timing checks are built to be non-flaky in CI:

* a benchmark slower than ``tolerance`` (default +20%) only fails when
  it is also slower by more than ``min_seconds`` in absolute terms, so
  jitter on sub-50ms workloads never trips the gate;
* CI invokes the script with a loose ``--tolerance 2.0
  --min-seconds 1.0``, reserving the tight default for local runs on
  quiet machines.
"""

from __future__ import annotations

from typing import Iterator

#: Timing drift allowed before a slowdown is a regression (+20%).
DEFAULT_TOLERANCE = 0.20
#: Absolute slack under which timing drift is ignored entirely.
DEFAULT_MIN_SECONDS = 0.05

#: Per-benchmark fields that must match the baseline exactly.
QUALITY_FIELDS = (
    "area",
    "delay",
    "cells",
    "cell_usage",
    "cones",
    "matches",
    "filter_invocations",
    "verify",
)


def _timing_problem(
    label: str,
    baseline: float,
    fresh: float,
    tolerance: float,
    min_seconds: float,
) -> Iterator[str]:
    if fresh <= baseline * (1.0 + tolerance):
        return
    if fresh - baseline <= min_seconds:
        return
    percent = (
        f"+{(fresh / baseline - 1.0) * 100.0:.0f}%" if baseline > 0 else "new cost"
    )
    yield (
        f"{label}: {fresh:.3f}s vs baseline {baseline:.3f}s "
        f"({percent}, tolerance {tolerance * 100.0:.0f}% / {min_seconds:.2f}s)"
    )


def compare_snapshots(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    subset: bool = False,
) -> list[str]:
    """Problems in ``fresh`` relative to ``baseline`` (empty = pass).

    With ``subset`` the fresh run may cover fewer benchmarks than the
    baseline — the CI smoke gate runs only the two smallest catalog
    entries against the committed full-catalog baseline.
    """
    problems: list[str] = []
    for field in ("schema", "library", "workers", "max_depth"):
        if baseline.get(field) != fresh.get(field):
            problems.append(
                f"{field}: {fresh.get(field)!r} vs baseline "
                f"{baseline.get(field)!r} — snapshots are not comparable"
            )
    if problems:
        return problems

    base_rows = baseline.get("benchmarks", {})
    fresh_rows = fresh.get("benchmarks", {})
    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing and not subset:
        problems.append(f"benchmarks missing from fresh run: {', '.join(missing)}")
    extra = sorted(set(fresh_rows) - set(base_rows))
    if extra:
        problems.append(
            f"benchmarks absent from baseline: {', '.join(extra)} "
            "(regenerate the baseline)"
        )

    for name in sorted(set(base_rows) & set(fresh_rows)):
        base, new = base_rows[name], fresh_rows[name]
        for field in QUALITY_FIELDS:
            if base.get(field) != new.get(field):
                problems.append(
                    f"{name}.{field}: {new.get(field)!r} vs baseline "
                    f"{base.get(field)!r} (quality fields must match exactly)"
                )
        problems.extend(
            _timing_problem(
                f"{name}.map_seconds",
                base.get("map_seconds", 0.0),
                new.get("map_seconds", 0.0),
                tolerance,
                min_seconds,
            )
        )

    problems.extend(
        _timing_problem(
            "annotate_seconds",
            baseline.get("annotate_seconds", 0.0),
            fresh.get("annotate_seconds", 0.0),
            tolerance,
            min_seconds,
        )
    )
    return problems
