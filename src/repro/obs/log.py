"""``repro-log/v1`` — the structured JSON-lines event log.

One event = one JSON object on one line, carrying the correlation
handles the trace layer mints:

```json
{"schema": "repro-log/v1", "ts": 1699.5, "level": "info",
 "logger": "repro.batch", "event": "job.retry",
 "trace_id": "9f2c…", "span_id": 7, "job_id": "chu-ad-opt@CMOS3",
 "fields": {"attempt": 2, "reason": "transient: …"}}
```

Design points:

* **stdlib-logging-backed.**  :func:`event` routes through
  ``logging.getLogger(name).log(...)``, so user-installed handlers,
  levels, and filters all apply; :func:`configure_event_log` attaches a
  ``FileHandler`` with the JSONL formatter to the ``"repro"`` root
  logger.  With no event handler configured, :func:`event` is a single
  list-truthiness check — the log costs nothing until someone asks for
  it (``--log FILE``).
* **Context, not plumbing.**  ``trace_id``/``span_id``/``job_id``
  attach automatically from a thread-local context stack
  (:func:`log_context`, :func:`use_tracer`) or from explicit keyword
  overrides, so instrumented sites never thread ids through call
  chains.
* **Fork-friendly.**  Process-pool workers (the batch engine's
  ``fork`` context) inherit the configured handler and its file
  descriptor; single-line appends are effectively atomic, so worker
  events interleave safely with coordinator events in one file.  Spawn
  platforms lose worker events — the coordinator's remain.
* **Tamper-rejecting.**  :func:`validate_log_line` /: func:`read_log`
  enforce the schema the same way ``repro-api/v1`` payloads do: wrong
  stamp, unknown top-level key, or mistyped field fails loudly.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

LOG_SCHEMA = "repro-log/v1"

#: The logger namespace event handlers attach to.
ROOT_LOGGER = "repro"

#: Top-level keys of a ``repro-log/v1`` line, in emission order.
LINE_KEYS = (
    "schema",
    "ts",
    "level",
    "logger",
    "event",
    "trace_id",
    "span_id",
    "job_id",
    "fields",
)

_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Context keys that land at a line's top level; everything else bound
#: via :func:`log_context` merges into ``fields``.
_CONTEXT_IDS = ("trace_id", "span_id", "job_id")

_local = threading.local()
#: Handlers installed by :func:`configure_event_log`; also the cheap
#: "is anyone listening" guard (inherited truthy across ``fork``).
_handlers: list[logging.Handler] = []


# ----------------------------------------------------------------------
# Context binding
# ----------------------------------------------------------------------


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@contextmanager
def log_context(**fields: object) -> Iterator[None]:
    """Bind fields onto every event emitted inside the ``with`` block.

    ``trace_id``/``span_id``/``job_id`` land at the line's top level;
    any other key merges into the event's ``fields`` dict (innermost
    binding wins).
    """
    stack = _stack()
    stack.append(dict(fields))
    try:
        yield
    finally:
        stack.pop()


@contextmanager
def use_tracer(tracer) -> Iterator[None]:
    """Bind a tracer: events pick up its ``trace_id`` and, at emission
    time, the id of the thread's current span."""
    stack = _stack()
    stack.append({"__tracer__": tracer})
    try:
        yield
    finally:
        stack.pop()


def current_context() -> dict:
    """The merged (innermost-wins) thread-local context."""
    merged: dict = {}
    for frame in _stack():
        merged.update(frame)
    return merged


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------


class _EventFormatter(logging.Formatter):
    """Render the pre-built event dict as one JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        line = getattr(record, "repro_line", None)
        if line is None:  # a plain logging call strayed onto our handler
            line = _build_line(
                record.name,
                record.getMessage(),
                record.levelname.lower(),
                {},
            )
            line["ts"] = record.created
        return json.dumps(line, sort_keys=False, default=str)


def _build_line(logger: str, name: str, level: str, fields: dict) -> dict:
    context = current_context()
    tracer = context.pop("__tracer__", None)
    line: dict = {
        "schema": LOG_SCHEMA,
        "ts": time.time(),
        "level": level,
        "logger": logger,
        "event": name,
    }
    for key in _CONTEXT_IDS:
        line[key] = fields.pop(key, context.pop(key, None))
    if tracer is not None and line["trace_id"] is None:
        line["trace_id"] = tracer.trace_id
        if line["span_id"] is None:
            span = tracer.current()
            line["span_id"] = span.span_id if span is not None else None
    merged = dict(context)
    merged.update(fields)
    line["fields"] = merged
    return line


def enabled() -> bool:
    """Whether any event handler is configured (events cost ~nothing
    otherwise)."""
    return bool(_handlers)


def event(
    logger: str, name: str, level: str = "info", **fields: object
) -> Optional[dict]:
    """Emit one structured event (no-op unless a handler is configured).

    ``trace_id``/``span_id``/``job_id`` keywords override the bound
    context; everything else lands in the line's ``fields``.  Returns
    the emitted line (tests use it), or ``None`` when disabled.
    """
    if not _handlers:
        return None
    if level not in _LEVELS:
        raise ValueError(f"unknown level {level!r}; one of {_LEVELS}")
    line = _build_line(logger, name, level, fields)
    logging.getLogger(logger).log(
        getattr(logging, level.upper()), name, extra={"repro_line": line}
    )
    return line


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def configure_event_log(
    path: Union[str, Path], level: str = "debug"
) -> logging.Handler:
    """Attach a JSONL event handler writing to ``path``.

    Returns the handler; pass it to :func:`close_event_log` when done
    (the CLI does this at command exit so the file is flushed before
    any consumer reads it).
    """
    handler = logging.FileHandler(str(path), mode="a", encoding="utf-8")
    handler.setFormatter(_EventFormatter())
    handler.setLevel(getattr(logging, level.upper()))
    root = logging.getLogger(ROOT_LOGGER)
    root.addHandler(handler)
    root.setLevel(logging.DEBUG)
    # Structured lines are for the file, not the user's terminal.
    root.propagate = False
    _handlers.append(handler)
    return handler


def close_event_log(handler: logging.Handler) -> None:
    """Flush, detach, and close a handler from :func:`configure_event_log`."""
    root = logging.getLogger(ROOT_LOGGER)
    handler.flush()
    root.removeHandler(handler)
    handler.close()
    if handler in _handlers:
        _handlers.remove(handler)


@contextmanager
def event_log(path: Union[str, Path]) -> Iterator[logging.Handler]:
    """``configure_event_log`` as a context manager."""
    handler = configure_event_log(path)
    try:
        yield handler
    finally:
        close_event_log(handler)


# ----------------------------------------------------------------------
# Validation / reading
# ----------------------------------------------------------------------


def validate_log_line(line: dict) -> dict:
    """Check one parsed line against ``repro-log/v1``; returns it.

    Raises ``ValueError`` on a wrong schema stamp, a missing or
    unknown top-level key, or a mistyped field — tampered logs fail at
    the boundary, like every other repro contract.
    """
    if not isinstance(line, dict):
        raise ValueError(f"log line must be a JSON object, got "
                         f"{type(line).__name__}")
    if line.get("schema") != LOG_SCHEMA:
        raise ValueError(
            f"log line schema {line.get('schema')!r} is not {LOG_SCHEMA!r}"
        )
    missing = [key for key in LINE_KEYS if key not in line]
    if missing:
        raise ValueError(f"log line missing key(s): {', '.join(missing)}")
    unknown = sorted(set(line) - set(LINE_KEYS))
    if unknown:
        raise ValueError(f"unknown log line key(s): {', '.join(unknown)}")
    if not isinstance(line["ts"], (int, float)):
        raise ValueError("log line ts must be a number")
    if line["level"] not in _LEVELS:
        raise ValueError(f"log line level {line['level']!r} not in {_LEVELS}")
    for key in ("logger", "event"):
        if not isinstance(line[key], str) or not line[key]:
            raise ValueError(f"log line {key} must be a non-empty string")
    if line["trace_id"] is not None and not isinstance(line["trace_id"], str):
        raise ValueError("log line trace_id must be a string or null")
    if line["span_id"] is not None and not isinstance(line["span_id"], int):
        raise ValueError("log line span_id must be an integer or null")
    if line["job_id"] is not None and not isinstance(line["job_id"], str):
        raise ValueError("log line job_id must be a string or null")
    if not isinstance(line["fields"], dict):
        raise ValueError("log line fields must be an object")
    return line


def read_log(path: Union[str, Path]) -> list[dict]:
    """Parse and validate every line of a ``repro-log/v1`` file."""
    lines: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: not JSON: {exc}") from exc
            try:
                lines.append(validate_log_line(parsed))
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: {exc}") from exc
    return lines


__all__ = [
    "LOG_SCHEMA",
    "LINE_KEYS",
    "ROOT_LOGGER",
    "close_event_log",
    "configure_event_log",
    "current_context",
    "enabled",
    "event",
    "event_log",
    "log_context",
    "read_log",
    "use_tracer",
    "validate_log_line",
]
