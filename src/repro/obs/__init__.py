"""Observability for the mapping pipeline: tracing, metrics, export.

The async mapper's production story ("map heavy traffic as fast as the
hardware allows") needs the same instrumentation a serving stack would
have.  This package supplies it without touching the hot path when
disabled:

* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical, thread-safe
  span trees over decompose → partition → cluster-enumerate →
  match/filter → cover (``repro map --trace out.json``);
* :class:`MetricsRegistry` — counters/gauges/histograms that absorb
  the merged ``CoverStats`` counters and phase timings;
* :mod:`repro.obs.export` — version-stamped JSON contracts for traces,
  metrics, and the ``BENCH_mapping.json`` perf snapshots that
  ``benchmarks/check_regression.py`` gates.
"""

from .export import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    load_bench_snapshot,
    metrics_to_dict,
    trace_to_dict,
    write_bench_snapshot,
    write_metrics,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .regression import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_TOLERANCE,
    QUALITY_FIELDS,
    compare_snapshots,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    span_shape,
    trace_shape,
)

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_TOLERANCE",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QUALITY_FIELDS",
    "SMOKE_BENCHMARKS",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "compare_snapshots",
    "load_bench_snapshot",
    "metrics_to_dict",
    "run_perf",
    "span_shape",
    "trace_shape",
    "trace_to_dict",
    "write_bench_snapshot",
    "write_metrics",
    "write_trace",
]

_LAZY = {"run_perf", "SMOKE_BENCHMARKS"}


def __getattr__(name: str):
    # ``perf`` imports the benchmark catalog and the mapper, which import
    # this package for the tracer — loading it lazily breaks the cycle.
    if name in _LAZY:
        from . import perf

        return getattr(perf, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
