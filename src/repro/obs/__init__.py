"""Observability for the mapping pipeline: tracing, metrics, export.

The async mapper's production story ("map heavy traffic as fast as the
hardware allows") needs the same instrumentation a serving stack would
have.  This package supplies it without touching the hot path when
disabled:

* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical, thread-safe
  span trees over decompose → partition → cluster-enumerate →
  match/filter → cover (``repro map --trace out.json``);
* :class:`MetricsRegistry` — counters/gauges/histograms that absorb
  the merged ``CoverStats`` counters and phase timings;
* :mod:`repro.obs.export` — version-stamped JSON contracts for traces,
  metrics, and the ``BENCH_mapping.json`` perf snapshots that
  ``benchmarks/check_regression.py`` gates;
* :mod:`repro.obs.explain` — the witness-backed decision log behind
  ``repro map --explain`` / ``repro explain``: every (cluster, cell)
  candidate the covering DP examined, with hazard rejections carrying a
  replayable :class:`~repro.hazards.witness.HazardWitness`.
"""

from .explain import (
    EXPLAIN_SCHEMA,
    CandidateRecord,
    ConeExplain,
    ExplainLog,
    render_explain,
    validate_explain_payload,
    verify_explain_witnesses,
)
from .export import (
    BENCH_SCHEMA,
    LOG_SCHEMA,
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    explain_to_dict,
    load_bench_snapshot,
    load_explain,
    metrics_to_dict,
    parse_prometheus_text,
    prometheus_text,
    trace_to_dict,
    write_bench_snapshot,
    write_explain,
    write_metrics,
    write_trace,
)
from .log import (
    configure_event_log,
    close_event_log,
    event,
    event_log,
    log_context,
    read_log,
    use_tracer,
    validate_log_line,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .regression import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_TOLERANCE,
    QUALITY_FIELDS,
    compare_snapshots,
)
from .tracer import (
    NULL_TRACER,
    TRACE_HEADER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    span_shape,
    trace_shape,
)

__all__ = [
    "BENCH_SCHEMA",
    "CandidateRecord",
    "ConeExplain",
    "Counter",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_TOLERANCE",
    "EXPLAIN_SCHEMA",
    "ExplainLog",
    "Gauge",
    "Histogram",
    "LOG_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QUALITY_FIELDS",
    "SMOKE_BENCHMARKS",
    "Span",
    "SpanContext",
    "TRACE_HEADER",
    "TRACE_SCHEMA",
    "Tracer",
    "close_event_log",
    "compare_snapshots",
    "configure_event_log",
    "event",
    "event_log",
    "explain_to_dict",
    "load_bench_snapshot",
    "load_explain",
    "log_context",
    "metrics_to_dict",
    "parse_prometheus_text",
    "prometheus_text",
    "read_log",
    "render_explain",
    "run_perf",
    "span_shape",
    "trace_shape",
    "trace_to_dict",
    "use_tracer",
    "validate_explain_payload",
    "validate_log_line",
    "verify_explain_witnesses",
    "write_bench_snapshot",
    "write_explain",
    "write_metrics",
    "write_trace",
]

_LAZY = {"run_perf", "SMOKE_BENCHMARKS"}


def __getattr__(name: str):
    # ``perf`` imports the benchmark catalog and the mapper, which import
    # this package for the tracer — loading it lazily breaks the cycle.
    if name in _LAZY:
        from . import perf

        return getattr(perf, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
