"""Decision-level provenance for the covering DP (the explain layer).

PR 3's spans and metrics say *how long* each mapping phase took; this
module records *why the cover came out the way it did*: one
:class:`CandidateRecord` per (cluster, cell) candidate the DP examined,
with its outcome —

* ``accepted``         — passed the §3.2.2 filter (or was hazard-free)
  and is the node's current cost champion;
* ``rejected-hazard``  — a hazardous cell whose hazards are *not* a
  subset of the subnetwork's; the reason names the offending hazard
  class, the §4.1–4.2 record that induces it, and a concrete
  :class:`~repro.hazards.witness.HazardWitness` input burst that
  provably glitches the cell (replayable on
  :mod:`repro.network.eventsim`);
* ``rejected-cost``    — passed every safety check but lost the
  dynamic-programming cost comparison;
* ``waived-dont-care`` — rejected by the plain filter, then accepted
  because every offending hazard lies outside the specified input
  bursts (the section-6 don't-care extension) and won the cost race.

Records accumulate per cone in a :class:`ConeExplain` (thread-confined,
exactly like ``CoverStats``) and merge in cone order into an
:class:`ExplainLog`, so the log is deterministic for any worker count.
The JSON contract is version-stamped ``repro-explain/v1`` (exported via
:mod:`repro.obs.export`); :func:`validate_explain_payload` is the schema
check CI runs on a live ``repro map --explain`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hazards.analyzer import SubsetViolation
    from ..mapping.cuts import Cluster
    from ..mapping.match import Match
    from .metrics import MetricsRegistry

EXPLAIN_SCHEMA = "repro-explain/v1"

ACCEPTED = "accepted"
REJECTED_HAZARD = "rejected-hazard"
REJECTED_COST = "rejected-cost"
WAIVED_DONT_CARE = "waived-dont-care"
OUTCOMES = (ACCEPTED, REJECTED_HAZARD, REJECTED_COST, WAIVED_DONT_CARE)

#: ``summary()`` keys per outcome (dashes → underscores for JSON/metrics).
_OUTCOME_KEYS = {outcome: outcome.replace("-", "_") for outcome in OUTCOMES}


def violation_reason(violation: "SubsetViolation", target_names) -> dict:
    """JSON-ready rejection reason for one subset-filter violation."""
    from ..hazards.witness import HazardWitness

    names = tuple(target_names)
    reason = {
        "kind": violation.kind,
        "detail": violation.detail,
        "target_start": violation.target_start,
        "target_end": violation.target_end,
        "target_transition": HazardWitness(
            kind=violation.kind,
            start=violation.target_start,
            end=violation.target_end,
            nvars=len(names),
            names=names,
        ).transition_string(),
    }
    if violation.witness is not None:
        reason["witness"] = violation.witness.to_dict()
    return reason


@dataclass
class CandidateRecord:
    """One (cluster, cell) candidate examined by the covering DP."""

    node: str
    leaves: tuple[str, ...]
    cell: str
    binding: tuple[int, ...]
    outcome: str = REJECTED_COST
    cost: Optional[float] = None
    hazardous: bool = False
    screened: bool = False
    waived: bool = False
    selected: bool = False
    reason: Optional[dict] = None

    def to_dict(self) -> dict:
        payload = {
            "node": self.node,
            "leaves": list(self.leaves),
            "cell": self.cell,
            "binding": list(self.binding),
            "outcome": self.outcome,
            "cost": self.cost,
            "hazardous": self.hazardous,
            "screened": self.screened,
            "waived": self.waived,
            "selected": self.selected,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload


@dataclass
class ConeExplain:
    """Thread-confined per-cone recorder (the explain twin of the
    per-cone ``CoverStats`` accumulator)."""

    root: str
    records: list[CandidateRecord] = field(default_factory=list)

    def candidate(self, node: str, cluster: "Cluster", match: "Match") -> CandidateRecord:
        record = CandidateRecord(
            node=node,
            leaves=tuple(cluster.leaves),
            cell=match.cell.name,
            binding=tuple(match.binding),
        )
        self.records.append(record)
        return record

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "candidates": [record.to_dict() for record in self.records],
        }


@dataclass
class ExplainLog:
    """The full decision log of one mapping run."""

    design: str = ""
    library: str = ""
    mode: str = ""
    filter_mode: str = ""
    objective: str = ""
    workers: int = 1
    cones: list[ConeExplain] = field(default_factory=list)

    def add_cone(self, cone: ConeExplain) -> None:
        self.cones.append(cone)

    def iter_records(self) -> Iterator[CandidateRecord]:
        for cone in self.cones:
            yield from cone.records

    def reason_counts(self) -> dict[str, int]:
        """Rejection counts per hazard kind (the §4 class of the reason)."""
        counts: dict[str, int] = {}
        for record in self.iter_records():
            if record.outcome == REJECTED_HAZARD and record.reason is not None:
                kind = record.reason.get("kind", "unknown")
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        outcome_counts = {key: 0 for key in _OUTCOME_KEYS.values()}
        screened = selected = candidates = 0
        for record in self.iter_records():
            candidates += 1
            outcome_counts[_OUTCOME_KEYS[record.outcome]] += 1
            if record.screened:
                screened += 1
            if record.selected:
                selected += 1
        return {
            "cones": len(self.cones),
            "candidates": candidates,
            # One screened candidate == one hazards_subset invocation,
            # so this must equal CoverStats.filter_invocations — the
            # "100% of filter invocations are explained" contract.
            "filter_invocations": screened,
            "selected": selected,
            "reason_kinds": self.reason_counts(),
            **outcome_counts,
        }

    def publish_metrics(self, registry: "MetricsRegistry") -> None:
        """Record the decision counts under ``explain.*`` counters."""
        summary = self.summary()
        registry.counter("explain.candidates").inc(summary["candidates"])
        registry.counter("explain.filter_invocations").inc(
            summary["filter_invocations"]
        )
        for outcome, key in _OUTCOME_KEYS.items():
            registry.counter(f"explain.{key}").inc(summary[key])
        for kind, count in summary["reason_kinds"].items():
            registry.counter(
                f"explain.rejected_hazard.{kind.replace('-', '_')}"
            ).inc(count)

    def to_dict(self) -> dict:
        return {
            "schema": EXPLAIN_SCHEMA,
            "design": self.design,
            "library": self.library,
            "mode": self.mode,
            "filter_mode": self.filter_mode,
            "objective": self.objective,
            "workers": self.workers,
            "summary": self.summary(),
            "cones": [cone.to_dict() for cone in self.cones],
        }


# ----------------------------------------------------------------------
# Rendering (the ``repro explain`` report)
# ----------------------------------------------------------------------

def render_explain(
    payload: dict,
    cone: Optional[str] = None,
    limit: Optional[int] = None,
    rejected_only: bool = False,
) -> list[str]:
    """Human-readable per-cone decision report of an explain payload.

    ``cone`` restricts to one cone root; ``limit`` caps the candidate
    lines per cone; ``rejected_only`` keeps only hazard rejections (the
    question users actually ask: *why did this cell lose?*).
    """
    summary = payload.get("summary", {})
    lines = [
        f"{payload.get('design', '?')} onto {payload.get('library', '?')} "
        f"({payload.get('mode', '?')} mapping, filter={payload.get('filter_mode', '?')}, "
        f"objective={payload.get('objective', '?')})",
        f"decisions: {summary.get('candidates', 0)} candidates over "
        f"{summary.get('cones', 0)} cones — "
        f"{summary.get('accepted', 0)} accepted, "
        f"{summary.get('rejected_hazard', 0)} hazard-rejected, "
        f"{summary.get('rejected_cost', 0)} cost-rejected, "
        f"{summary.get('waived_dont_care', 0)} waived by don't-cares",
    ]
    kinds = summary.get("reason_kinds") or {}
    if kinds:
        parts = ", ".join(f"{kind}: {count}" for kind, count in kinds.items())
        lines.append(f"rejection reasons: {parts}")
    for cone_payload in payload.get("cones", []):
        root = cone_payload.get("root", "?")
        if cone is not None and root != cone:
            continue
        candidates = cone_payload.get("candidates", [])
        shown = [
            c
            for c in candidates
            if not rejected_only or c.get("outcome") == REJECTED_HAZARD
        ]
        lines.append(f"\ncone {root}: {len(candidates)} candidate(s)")
        for record in shown if limit is None else shown[:limit]:
            lines.extend(_render_candidate(record))
        if limit is not None and len(shown) > limit:
            lines.append(f"  … {len(shown) - limit} more")
    return lines


def _render_candidate(record: dict) -> list[str]:
    mark = {
        ACCEPTED: "+",
        WAIVED_DONT_CARE: "~",
        REJECTED_COST: "-",
        REJECTED_HAZARD: "!",
    }.get(record.get("outcome", ""), "?")
    cost = record.get("cost")
    cost_text = f" cost={cost:g}" if cost is not None else ""
    flags = []
    if record.get("selected"):
        flags.append("selected")
    if record.get("screened"):
        flags.append("screened")
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    lines = [
        f"  {mark} {record.get('node')}: {record.get('cell')}"
        f"({', '.join(record.get('leaves', []))}) "
        f"{record.get('outcome')}{cost_text}{flag_text}"
    ]
    reason = record.get("reason")
    if reason:
        lines.append(
            f"      {reason.get('kind')}: {reason.get('detail')} — "
            f"cluster transition {reason.get('target_transition')}"
        )
        witness = reason.get("witness")
        if witness:
            names = witness.get("names", [])
            start, end = witness.get("start", 0), witness.get("end", 0)
            arrows = []
            for i, name in enumerate(names):
                before, after = start >> i & 1, end >> i & 1
                arrows.append(
                    f"{name}{'↑' if after else '↓'}"
                    if before != after
                    else f"{name}={before}"
                )
            lines.append(f"      cell witness: {' '.join(arrows)}")
    return lines


# ----------------------------------------------------------------------
# Schema validation (CI gate on a live --explain artifact)
# ----------------------------------------------------------------------

def validate_explain_payload(payload: dict) -> dict:
    """Validate a ``repro-explain/v1`` payload; returns its summary.

    Raises ``ValueError`` naming the first problem: wrong schema,
    missing keys, unknown outcomes, a hazard rejection without a reason
    or witness, or a summary inconsistent with the recorded candidates
    (which would mean the log does not cover every filter invocation).
    """
    if not isinstance(payload, dict):
        raise ValueError("explain payload must be a JSON object")
    if payload.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(
            f"schema {payload.get('schema')!r} is not {EXPLAIN_SCHEMA!r}"
        )
    for key in ("design", "library", "mode", "summary", "cones"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    counts = {key: 0 for key in _OUTCOME_KEYS.values()}
    screened = selected = candidates = 0
    kinds: dict[str, int] = {}
    for cone in payload["cones"]:
        if "root" not in cone or "candidates" not in cone:
            raise ValueError("cone entries need 'root' and 'candidates'")
        for record in cone["candidates"]:
            for key in ("node", "cell", "leaves", "binding", "outcome"):
                if key not in record:
                    raise ValueError(
                        f"candidate in cone {cone['root']!r} misses {key!r}"
                    )
            outcome = record["outcome"]
            if outcome not in OUTCOMES:
                raise ValueError(f"unknown outcome {outcome!r}")
            candidates += 1
            counts[_OUTCOME_KEYS[outcome]] += 1
            screened += bool(record.get("screened"))
            selected += bool(record.get("selected"))
            if outcome == REJECTED_HAZARD:
                reason = record.get("reason")
                if not reason:
                    raise ValueError(
                        f"hazard rejection of {record['cell']!r} at "
                        f"{record['node']!r} carries no reason"
                    )
                for key in ("kind", "detail", "target_start", "target_end"):
                    if key not in reason:
                        raise ValueError(f"rejection reason misses {key!r}")
                witness = reason.get("witness")
                if not witness:
                    raise ValueError(
                        f"hazard rejection of {record['cell']!r} at "
                        f"{record['node']!r} carries no witness"
                    )
                for key in ("kind", "start", "end", "nvars", "names"):
                    if key not in witness:
                        raise ValueError(f"witness misses {key!r}")
                kinds[reason["kind"]] = kinds.get(reason["kind"], 0) + 1
    summary = payload["summary"]
    expected = {
        "cones": len(payload["cones"]),
        "candidates": candidates,
        "filter_invocations": screened,
        "selected": selected,
        **counts,
    }
    for key, value in expected.items():
        if summary.get(key) != value:
            raise ValueError(
                f"summary[{key!r}] = {summary.get(key)!r} but the recorded "
                f"candidates say {value!r}"
            )
    if dict(summary.get("reason_kinds", {})) != kinds:
        raise ValueError(
            f"summary reason_kinds {summary.get('reason_kinds')!r} "
            f"disagree with the recorded reasons {kinds!r}"
        )
    return summary


def verify_explain_witnesses(payload: dict, library) -> int:
    """Replay every witness of an explain payload on the event simulator.

    Each hazard-rejection witness is replayed against its cell's
    path-labelled implementation; returns the number replayed.  Raises
    ``ValueError`` if any fails to glitch — the self-check that makes
    the explain layer evidence rather than logging.
    """
    from ..hazards.witness import HazardWitness, replay_witness

    replayed = 0
    for cone in payload.get("cones", []):
        for record in cone.get("candidates", []):
            reason = record.get("reason") or {}
            witness_payload = reason.get("witness")
            if not witness_payload:
                continue
            cell = library.cell(record["cell"])
            if cell.analysis is None:
                cell.annotate()
            witness = HazardWitness.from_dict(witness_payload)
            replay = replay_witness(cell.analysis.lsop, witness)
            if not replay.glitched:
                raise ValueError(
                    f"witness for {record['cell']!r} at {record['node']!r} "
                    f"did not glitch: {replay.describe()}"
                )
            replayed += 1
    return replayed
