"""Counters, gauges, and histograms for the mapping pipeline.

A :class:`MetricsRegistry` is the canonical sink for the pipeline's
numeric telemetry.  It absorbs and supersedes the ad-hoc counter bag
the mapper grew in the performance PR — ``CoverStats`` remains the
backward-compatible per-cone accumulator (plain attributes are the
right shape for a single-threaded hot loop), but the merged run-level
numbers land here, alongside phase timings and cache statistics, under
stable dotted names:

* ``cover.*``       — the merged :class:`~repro.mapping.cover.CoverStats`
  counters (``cover.matches``, ``cover.analysis_cache_hits``, …);
* ``map.*``         — run-level quality/timing gauges (``map.area``,
  ``map.elapsed_seconds``, ``map.cones``);
* ``annotate.*``    — library-annotation timing and cold/warm source;
* ``anncache.*``    — on-disk annotation-cache I/O timings;
* ``hazard.*``      — hazard-analysis call counts and durations;
* ``hazard_cache.*`` — memo-cache hit/miss mirrors (opt-in via
  :meth:`repro.hazards.cache.HazardCache.bind_metrics`).

Thread safety: instrument creation takes the registry lock; each
instrument guards its own updates, so worker threads may update shared
instruments directly.  The per-cone hot loop never does — it increments
a thread-confined ``CoverStats`` and the registry absorbs the merged
result once per run, keeping disabled/enabled overhead far under the
5% budget.
"""

from __future__ import annotations

import bisect
import threading
from typing import Optional, Union

#: Default histogram bucket upper bounds (seconds-flavoured: the
#: pipeline's histograms overwhelmingly observe durations).  Cumulative
#: Prometheus ``le`` buckets derive from these; the implicit ``+Inf``
#: bucket is the total count.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")
    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_lock", "_value")
    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Optional[Union[int, float, str, bool]] = None

    def set(self, value: Union[int, float, str, bool]) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Optional[Union[int, float, str, bool]]:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / min / max (enough for rates and means without
    unbounded storage) plus fixed-bound bucket counts so the Prometheus
    exposition (:func:`repro.obs.export.prometheus_text`) can emit the
    standard cumulative ``_bucket{le=...}`` series; the mapper feeds it
    per-cone covering times and per-analysis durations.
    """

    __slots__ = ("_lock", "count", "total", "minimum", "maximum",
                 "bounds", "bucket_counts")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bounds = tuple(bounds)
        # One slot per bound plus the overflow (+Inf) slot; stored
        # non-cumulative, summed cumulatively at exposition time.
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.total / self.count if self.count else None,
                # Non-cumulative per-bound counts; the last entry pairs
                # with the implicit +Inf bound.
                "buckets": [
                    [bound, count]
                    for bound, count in zip(
                        (*self.bounds, None), self.bucket_counts
                    )
                ],
            }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, thread-safe collection of instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def _get(self, name: str, cls: type) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls()
                self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready view of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.to_dict() for name, instrument in items}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, histograms combine their summaries, gauges take
        the other registry's value (last write wins, as always).
        """
        for name, instrument in other.snapshot().items():
            if instrument["type"] == "counter":
                self.counter(name).inc(instrument["value"])
            elif instrument["type"] == "gauge":
                if instrument["value"] is not None:
                    self.gauge(name).set(instrument["value"])
            else:
                mine = self.histogram(name)
                with mine._lock:
                    mine.count += instrument["count"]
                    mine.total += instrument["sum"]
                    theirs_buckets = instrument.get("buckets")
                    if theirs_buckets is not None and len(
                        theirs_buckets
                    ) == len(mine.bucket_counts):
                        for index, (_, count) in enumerate(theirs_buckets):
                            mine.bucket_counts[index] += count
                    for bound, better in (
                        ("min", lambda a, b: b < a),
                        ("max", lambda a, b: b > a),
                    ):
                        theirs = instrument[bound]
                        if theirs is None:
                            continue
                        attr = "minimum" if bound == "min" else "maximum"
                        current = getattr(mine, attr)
                        if current is None or better(current, theirs):
                            setattr(mine, attr, theirs)

    # -- bridges from the legacy stat bags -------------------------------
    def absorb_cover_stats(self, stats, prefix: str = "cover.") -> None:
        """Fold a merged :class:`~repro.mapping.cover.CoverStats` in.

        Integer fields become counters; ``cone_seconds`` (a duration
        sum, not a count) becomes a ``cover.cone_seconds`` counter too
        so repeated runs accumulate, mirroring ``CoverStats.merge``.
        """
        for name in stats.COUNTER_FIELDS:
            self.counter(prefix + name).inc(getattr(stats, name))
        self.counter(prefix + "cone_seconds").inc(stats.cone_seconds)

    def absorb_cache_stats(self, stats, prefix: str = "hazard_cache.") -> None:
        """Fold a :class:`~repro.hazards.cache.CacheStats` snapshot in."""
        for name in (
            "analysis_hits",
            "analysis_misses",
            "subset_hits",
            "subset_misses",
            "transition_hits",
            "transition_misses",
        ):
            self.counter(prefix + name).inc(getattr(stats, name))

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"
