"""JSON export of traces, metrics, and benchmark snapshots.

Three on-disk contracts live here, each version-stamped:

* ``repro-trace/v1`` — a span forest (``Tracer.to_dict``) plus an
  optional metrics snapshot, written by ``repro map --trace`` and
  ``repro perf --trace``;
* ``repro-metrics/v1`` — a standalone metrics snapshot;
* ``repro-bench-mapping/v1`` — the ``BENCH_mapping.json`` benchmark
  snapshot written by ``repro perf`` and diffed by
  ``benchmarks/check_regression.py`` (schema documented in the README's
  Observability section);
* ``repro-explain/v1`` — the witness-backed mapping decision log
  written by ``repro map --explain`` and rendered by ``repro explain``
  (schema owned by :mod:`repro.obs.explain`);
* ``repro-batch/v1`` — the fsynced JSONL checkpoint journal written by
  ``repro batch`` (schema and validator owned by
  :mod:`repro.batch.journal`; lives there rather than here because the
  journal is an append-only event log, not a one-shot JSON document).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Optional, Union

from .explain import EXPLAIN_SCHEMA, ExplainLog, validate_explain_payload
from .metrics import MetricsRegistry
from .tracer import Tracer

TRACE_SCHEMA = "repro-trace/v1"
METRICS_SCHEMA = "repro-metrics/v1"
#: The JSONL event log (schema and validator owned by
#: :mod:`repro.obs.log`; the stamp is re-exported here with its peers).
LOG_SCHEMA = "repro-log/v1"
BENCH_SCHEMA = "repro-bench-mapping/v1"
#: Conformance certificates (schema owned by
#: :mod:`repro.conformance.certifier`; the stamp lives here so the
#: exporters need no import from the conformance layer).
CERT_SCHEMA = "repro-cert/v1"


def _atomic_write_text(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write (SIGKILL, disk-full, the service being drained)
    must never leave a consumer — ``repro explain``,
    ``check_regression.py``, a resumed batch — reading a torn JSON
    document.  Same pattern as the annotation cache's ``_write_payload``;
    the temp name is PID-qualified so concurrent writers to the same
    target cannot clobber each other's staging files.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only reached on write failure
            tmp.unlink()
    return path


def trace_to_dict(
    tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> dict:
    payload = tracer.to_dict()
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    return payload


def write_trace(
    path: Union[str, Path],
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Write a trace (and optional metrics snapshot) as pretty JSON."""
    return _atomic_write_text(
        Path(path), json.dumps(trace_to_dict(tracer, metrics), indent=2) + "\n"
    )


def metrics_to_dict(metrics: MetricsRegistry) -> dict:
    return {"schema": METRICS_SCHEMA, "metrics": metrics.snapshot()}


def write_metrics(path: Union[str, Path], metrics: MetricsRegistry) -> Path:
    return _atomic_write_text(
        Path(path), json.dumps(metrics_to_dict(metrics), indent=2) + "\n"
    )


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)


def _prom_name(name: str) -> str:
    """A dotted repro metric name as a Prometheus metric name."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: Union[int, float, bool]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters become ``name_total``; histograms the standard cumulative
    ``name_bucket{le=...}`` / ``name_sum`` / ``name_count`` series;
    numeric and boolean gauges plain gauges; string gauges (backend
    names, sources) the conventional ``name_info{value="..."} 1``
    shape.  Dotted repro names are sanitized to underscores.
    """
    lines: list[str] = []
    for name, snap in metrics.snapshot().items():
        prom = _prom_name(name)
        kind = snap["type"]
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_prom_value(snap['value'])}")
        elif kind == "gauge":
            value = snap["value"]
            if value is None:
                continue
            if isinstance(value, str):
                lines.append(f"# TYPE {prom}_info gauge")
                lines.append(
                    f'{prom}_info{{value="{_prom_escape(value)}"}} 1'
                )
            else:
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_prom_value(value)}")
        else:  # histogram
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in snap.get("buckets", []):
                if bound is None:
                    continue
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{prom}_sum {_prom_value(float(snap['sum']))}")
            lines.append(f"{prom}_count {snap['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition text back into ``{"types": ..., "samples": ...}``.

    ``types`` maps metric name → declared type; ``samples`` maps
    ``name`` or ``name{labels}`` → float value.  Used by the obs-smoke
    harness and the service tests to prove ``/metrics?format=prometheus``
    emits well-formed exposition, not just non-empty text.
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: not exposition format: {raw!r}")
        labels = match.group("labels")
        key = match.group("name") + (f"{{{labels}}}" if labels else "")
        samples[key] = float(match.group("value"))
    return {"types": types, "samples": samples}


def write_bench_snapshot(path: Union[str, Path], snapshot: dict) -> Path:
    """Write a ``repro-bench-mapping/v1`` snapshot (``repro perf``)."""
    if snapshot.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"benchmark snapshot must carry schema {BENCH_SCHEMA!r}"
        )
    return _atomic_write_text(
        Path(path), json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )


def load_bench_snapshot(path: Union[str, Path]) -> dict:
    """Load and schema-check a ``BENCH_mapping.json`` payload."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if snapshot.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {snapshot.get('schema')!r} is not {BENCH_SCHEMA!r}"
        )
    return snapshot


def write_certificate(path: Union[str, Path], certificate: dict) -> Path:
    """Write a ``repro-cert/v1`` document (``repro certify --json``).

    Accepts the ``to_dict`` payload of a
    :class:`~repro.conformance.certifier.Certificate` (or any dict
    already carrying the stamp) and writes it atomically.
    """
    if certificate.get("schema") != CERT_SCHEMA:
        raise ValueError(f"certificate must carry schema {CERT_SCHEMA!r}")
    return _atomic_write_text(
        Path(path), json.dumps(certificate, indent=2, sort_keys=True) + "\n"
    )


def load_certificate(path: Union[str, Path]) -> dict:
    """Load and schema-check a ``repro-cert/v1`` payload."""
    with open(path) as handle:
        certificate = json.load(handle)
    if certificate.get("schema") != CERT_SCHEMA:
        raise ValueError(
            f"{path}: schema {certificate.get('schema')!r} is not "
            f"{CERT_SCHEMA!r}"
        )
    return certificate


def explain_to_dict(log: Union[ExplainLog, dict]) -> dict:
    """Normalize an explain log (or already-built payload) to JSON form."""
    payload = log.to_dict() if isinstance(log, ExplainLog) else log
    if payload.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(
            f"explain payload must carry schema {EXPLAIN_SCHEMA!r}"
        )
    return payload


def write_explain(
    path: Union[str, Path], log: Union[ExplainLog, dict]
) -> Path:
    """Write a ``repro-explain/v1`` decision log (``repro map --explain``).

    The payload is validated before writing, so a malformed log fails
    here rather than at the consumer.
    """
    payload = explain_to_dict(log)
    validate_explain_payload(payload)
    return _atomic_write_text(
        Path(path), json.dumps(payload, indent=2) + "\n"
    )


def load_explain(path: Union[str, Path]) -> dict:
    """Load and schema-check a ``repro-explain/v1`` payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} is not "
            f"{EXPLAIN_SCHEMA!r}"
        )
    return payload
