"""The ``repro perf`` workload runner behind ``BENCH_mapping.json``.

Replays the paper's Table-5 experiment — async-map every burst-mode
benchmark onto one library — and records, per benchmark, the wall time,
hazard-cache hit rates, mapped area/cell counts, and the
``verify_mapping`` verdict.  The snapshot (schema
``repro-bench-mapping/v1``) is what ``benchmarks/check_regression.py``
diffs against the committed baseline: quality fields must match
exactly; timings may drift within a tolerance.

The library is annotated once up front (the Table-2 initialization
cost, reported separately as ``annotate_seconds``) and the global
hazard cache is cleared before each benchmark, so per-benchmark numbers
are independent of catalog order.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..burstmode.benchmarks import TABLE5_ORDER, synthesize_benchmark
from ..hazards.cache import clear_global_cache
from ..library.library import Library
from ..library.standard import load_library
from ..mapping.mapper import MappingOptions, MappingResult, async_tmap
from ..mapping.verify import verify_mapping
from .export import BENCH_SCHEMA
from .metrics import MetricsRegistry
from .tracer import Tracer

#: The two sub-second catalog entries — the CI smoke-gate workload.
SMOKE_BENCHMARKS = ("chu-ad-opt", "vanbek-opt")


def benchmark_entry(result: MappingResult, verify: bool) -> dict:
    """One benchmark's snapshot row from its mapping result."""
    stats = result.stats
    total_lookups = stats.cache_hits + stats.cache_misses
    entry = {
        "map_seconds": round(result.elapsed, 4),
        "area": result.area,
        "delay": round(result.delay, 4),
        "cells": int(sum(result.cell_usage().values())),
        "cell_usage": {k: int(v) for k, v in sorted(result.cell_usage().items())},
        "cones": stats.cones,
        "matches": stats.matches,
        "filter_invocations": stats.filter_invocations,
        "cache": {
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "hit_rate": round(stats.cache_hits / total_lookups, 4)
            if total_lookups
            else 0.0,
        },
    }
    if verify:
        report = verify_mapping(result.source, result.mapped)
        entry["verify"] = {
            "equivalent": bool(report.equivalent),
            "hazard_safe": bool(report.hazard_safe),
            "ok": bool(report.ok),
        }
    return entry


def run_perf(
    benchmarks: Optional[Sequence[str]] = None,
    library: str | Library = "CMOS3",
    workers: int = 1,
    max_depth: int = 5,
    verify: bool = True,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress=None,
) -> dict:
    """Run the Table-5 workload and return a bench-snapshot dict.

    ``progress`` is an optional ``callable(name, entry)`` invoked after
    each benchmark (the CLI prints a row per call).
    """
    names = list(benchmarks) if benchmarks else list(TABLE5_ORDER)
    lib = library if isinstance(library, Library) else load_library(library)

    annotate_start = time.perf_counter()
    report = lib.annotate_hazards(tracer=tracer, metrics=metrics)
    annotate_seconds = time.perf_counter() - annotate_start

    rows: dict[str, dict] = {}
    for name in names:
        network = synthesize_benchmark(name).netlist(name)
        clear_global_cache()
        options = MappingOptions(
            max_depth=max_depth,
            workers=workers,
            tracer=tracer,
            metrics=metrics,
        )
        result = async_tmap(network, lib, options)
        entry = benchmark_entry(result, verify)
        rows[name] = entry
        if progress is not None:
            progress(name, entry)
    clear_global_cache()

    return {
        "schema": BENCH_SCHEMA,
        "library": lib.name,
        "workers": workers,
        "max_depth": max_depth,
        "annotate_seconds": round(annotate_seconds, 4),
        "annotate_source": report.source,
        "benchmarks": rows,
    }
