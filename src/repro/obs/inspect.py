"""Trace-file inspection behind the ``repro obs`` subcommand.

Pure functions over loaded ``repro-trace/v1`` payloads (no Tracer
objects needed), so a trace written yesterday by a batch run — or
shipped back from the daemon — can be rendered, ranked, and diffed
offline:

* :func:`render_tree`    — the span forest as an indented tree with
  durations and identifying attributes;
* :func:`top_spans`      — hottest span groups by self-time (duration
  minus child time), optionally attributed per worker thread;
* :func:`critical_path`  — the longest root-to-leaf chain (greedy
  maximum-duration descent, the span-tree analogue of a schedule's
  critical path);
* :func:`diff_traces`    — span-by-span comparison of two traces by
  (name, key) path: per-group duration deltas plus added/removed
  groups.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, Union

TRACE_SCHEMA = "repro-trace/v1"


def load_trace(path: Union[str, Path]) -> dict:
    """Load and schema-check a ``repro-trace/v1`` file."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} is not "
            f"{TRACE_SCHEMA!r}"
        )
    return payload


def iter_spans(
    payload: dict, depth: int = 0, path: tuple = ()
) -> Iterator[tuple[dict, int, tuple]]:
    """Yield ``(span, depth, path)`` pre-order over the whole forest.

    ``path`` is the (name, key) chain from the root — the stable
    identity :func:`diff_traces` matches on (timings and span ids
    differ between runs; the work's shape does not).
    """
    for span in payload.get("spans", ()):
        yield from _walk(span, depth, path)


def _walk(span: dict, depth: int, path: tuple):
    here = path + (_identity(span),)
    yield span, depth, here
    for child in span.get("children", ()):
        yield from _walk(child, depth + 1, here)


def _identity(span: dict) -> tuple:
    attrs = span.get("attrs") or {}
    key = attrs.get("key")
    if key is None:
        key = attrs.get("job")
    return (span.get("name"), key)


def _duration(span: dict) -> float:
    duration = span.get("duration")
    if duration is None and span.get("end") is not None:
        duration = span["end"] - span["start"]
    return float(duration or 0.0)


def self_time(span: dict) -> float:
    """Duration minus time covered by children (floored at zero).

    Child intervals can overlap under parallel covering, so the sum of
    child durations may exceed the parent's — the floor keeps the
    attribution conservative rather than negative.
    """
    children = sum(_duration(child) for child in span.get("children", ()))
    return max(0.0, _duration(span) - children)


# ----------------------------------------------------------------------
# tree
# ----------------------------------------------------------------------

#: Attributes worth showing inline in the tree view, in print order.
_TREE_ATTRS = ("key", "job", "design", "library", "endpoint", "status",
               "worker", "attempt", "cones", "jobs", "backend")


def render_tree(
    payload: dict, max_depth: Optional[int] = None
) -> list[str]:
    """The span forest as indented ``duration name [attrs]`` lines."""
    lines: list[str] = []
    trace_id = payload.get("trace_id")
    if trace_id:
        lines.append(f"trace {trace_id}")
    for span, depth, _ in iter_spans(payload):
        if max_depth is not None and depth > max_depth:
            continue
        attrs = span.get("attrs") or {}
        shown = [
            f"{name}={attrs[name]}" for name in _TREE_ATTRS if name in attrs
        ]
        suffix = f"  [{', '.join(shown)}]" if shown else ""
        lines.append(
            f"{'  ' * depth}{_duration(span) * 1000:9.2f}ms  "
            f"{span.get('name')}{suffix}"
        )
    return lines


# ----------------------------------------------------------------------
# top
# ----------------------------------------------------------------------


def top_spans(
    payload: dict, limit: int = 10, by_worker: bool = False
) -> list[dict]:
    """Hottest span groups by total self-time, descending.

    Groups by span name — or by ``(name, worker)`` when ``by_worker``
    is set, using the ``worker`` attribute cone spans carry — and
    reports count, total/self seconds, and the single longest span.
    """
    groups: dict[tuple, dict] = {}
    for span, _, _ in iter_spans(payload):
        attrs = span.get("attrs") or {}
        key = (span.get("name"), attrs.get("worker") if by_worker else None)
        row = groups.setdefault(
            key,
            {
                "name": key[0],
                "worker": key[1],
                "count": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "max_seconds": 0.0,
            },
        )
        row["count"] += 1
        row["total_seconds"] += _duration(span)
        row["self_seconds"] += self_time(span)
        row["max_seconds"] = max(row["max_seconds"], _duration(span))
    rows = sorted(
        groups.values(), key=lambda r: r["self_seconds"], reverse=True
    )
    return rows[:limit]


def render_top(rows: list[dict]) -> list[str]:
    lines = [f"{'self(s)':>10} {'total(s)':>10} {'count':>6} "
             f"{'max(s)':>10}  span"]
    for row in rows:
        label = row["name"]
        if row.get("worker"):
            label = f"{label} @{row['worker']}"
        lines.append(
            f"{row['self_seconds']:10.4f} {row['total_seconds']:10.4f} "
            f"{row['count']:6d} {row['max_seconds']:10.4f}  {label}"
        )
    return lines


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------


def critical_path(payload: dict) -> list[dict]:
    """Greedy longest-duration descent from the longest root.

    Each step keeps the child with the largest duration — the chain a
    latency fix has to shorten before anything else matters.
    """
    roots = list(payload.get("spans", ()))
    if not roots:
        return []
    path = []
    node = max(roots, key=_duration)
    while node is not None:
        path.append(node)
        children = node.get("children") or []
        node = max(children, key=_duration) if children else None
    return path


def render_critical(path: list[dict]) -> list[str]:
    lines = []
    total = _duration(path[0]) if path else 0.0
    for depth, span in enumerate(path):
        duration = _duration(span)
        share = (duration / total * 100.0) if total else 0.0
        attrs = span.get("attrs") or {}
        key = attrs.get("key") or attrs.get("job")
        suffix = f"  [{key}]" if key is not None else ""
        lines.append(
            f"{'  ' * depth}{duration * 1000:9.2f}ms {share:5.1f}%  "
            f"{span.get('name')}{suffix}"
        )
    return lines


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------


def _grouped(payload: dict) -> dict[tuple, dict]:
    groups: dict[tuple, dict] = {}
    for span, _, path in iter_spans(payload):
        row = groups.setdefault(path, {"count": 0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += _duration(span)
    return groups


def diff_traces(before: dict, after: dict) -> dict:
    """Span-by-span comparison keyed on the (name, key) path.

    Returns ``changed`` (per-path duration delta, sorted by absolute
    delta descending), ``added``, and ``removed`` path groups.
    """
    a, b = _grouped(before), _grouped(after)
    changed = []
    for path in sorted(set(a) & set(b)):
        delta = b[path]["seconds"] - a[path]["seconds"]
        changed.append(
            {
                "path": path,
                "before_seconds": a[path]["seconds"],
                "after_seconds": b[path]["seconds"],
                "delta_seconds": delta,
                "before_count": a[path]["count"],
                "after_count": b[path]["count"],
            }
        )
    changed.sort(key=lambda row: abs(row["delta_seconds"]), reverse=True)
    return {
        "changed": changed,
        "added": sorted(set(b) - set(a)),
        "removed": sorted(set(a) - set(b)),
    }


def _path_label(path: tuple) -> str:
    parts = []
    for name, key in path:
        parts.append(f"{name}[{key}]" if key is not None else str(name))
    return " > ".join(parts)


def render_diff(diff: dict, limit: int = 20) -> list[str]:
    lines = [f"{'delta(s)':>10} {'before':>10} {'after':>10}  span path"]
    for row in diff["changed"][:limit]:
        lines.append(
            f"{row['delta_seconds']:+10.4f} {row['before_seconds']:10.4f} "
            f"{row['after_seconds']:10.4f}  {_path_label(row['path'])}"
        )
    for path in diff["added"][:limit]:
        lines.append(f"{'added':>10} {'-':>10} {'-':>10}  {_path_label(path)}")
    for path in diff["removed"][:limit]:
        lines.append(
            f"{'removed':>10} {'-':>10} {'-':>10}  {_path_label(path)}"
        )
    return lines


__all__ = [
    "critical_path",
    "diff_traces",
    "iter_spans",
    "load_trace",
    "render_critical",
    "render_diff",
    "render_top",
    "render_tree",
    "self_time",
    "top_spans",
]
