"""Hierarchical tracing for the mapping pipeline.

A :class:`Tracer` records a tree of timed *spans* — one per pipeline
phase (decompose, partition, per-cone covering, annotation, …) — so a
mapping run can be inspected after the fact: where the time went, how
many cones ran concurrently, which phase regressed.  The span tree is
the observability counterpart of the paper's Table-5 CPU column, at
phase granularity instead of whole-run granularity.

Design constraints, in order:

* **Zero cost when off.**  Every instrumented call site takes an
  optional tracer and defaults to :data:`NULL_TRACER`, whose ``span``
  is a shared no-op context manager — disabled tracing adds only an
  attribute lookup and a ``with`` on a do-nothing object per phase
  (never per match or per cube).
* **Thread-safe under parallel covering.**  The active-span stack is
  thread-local, so spans opened by worker threads nest correctly within
  work done on that thread; cross-thread parenting (a cone span opened
  on a pool thread under the main thread's ``cover`` span) is explicit
  via ``parent=``.  All tree mutations take the tracer lock — span
  creation happens per phase/cone, far off the hot path.
* **No process-global state.**  Tracers are plain objects passed down
  the call chain (``MappingOptions.tracer``), so two concurrent
  ``map_network`` calls with distinct tracers can never contaminate
  each other's trees (tested in ``tests/obs/test_tracer.py``).

``validate()`` checks well-formedness (every span closed, children
timed within their parents) and :func:`span_shape` gives an
order/timing-insensitive view of the tree used to assert that the
``workers=1`` and ``workers=4`` pipelines do the same work.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, Optional

#: Tolerance for parent/child interval containment checks.  Spans are
#: stamped with ``time.perf_counter`` from different threads; a small
#: slack absorbs clock-read ordering at span boundaries.
_TIME_EPSILON = 1e-6

#: HTTP header carrying a :class:`SpanContext` from client to daemon.
TRACE_HEADER = "X-Repro-Trace"


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanContext:
    """The wire form of "this work belongs under that span".

    A context is what crosses a process or HTTP boundary: the run's
    ``trace_id`` plus the span id of the remote parent.  It serializes
    to ``{trace_id}:{span_id}`` for the :data:`TRACE_HEADER` header and
    pickles untouched for process-pool submissions.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: int = 0) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def header_value(self) -> str:
        return f"{self.trace_id}:{self.span_id}"

    @classmethod
    def parse(cls, value: Optional[str]) -> Optional["SpanContext"]:
        """Parse a header value; ``None``/blank means "not traced".

        Malformed values raise ``ValueError`` — a mangled trace header
        is a caller bug worth rejecting loudly, not guessing around.
        """
        if not value:
            return None
        trace_id, sep, span = value.partition(":")
        if not sep or not trace_id or not span.isdigit():
            raise ValueError(
                f"malformed {TRACE_HEADER} value {value!r}; "
                "expected '<trace_id>:<span_id>'"
            )
        return cls(trace_id, int(span))

    # Pickling a __slots__ class needs explicit state plumbing.
    def __getstate__(self) -> tuple:
        return (self.trace_id, self.span_id)

    def __setstate__(self, state: tuple) -> None:
        self.trace_id, self.span_id = state

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id})"


class Span:
    """One timed node of the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start",
        "end",
        "children",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        span_id: int,
        parent_id: Optional[int],
        start: float,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.children: list["Span"] = []

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set_attr(self, **attrs: object) -> None:
        """Attach (or update) attributes on an open span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Thread-safe recorder of a forest of span trees.

    Usually a traced operation produces exactly one root (the
    ``async_tmap`` / ``tmap`` span); the forest form keeps the tracer
    reusable across several runs when a caller wants one trace file for
    a whole session (``repro perf`` does this).
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._local = threading.local()
        self._next_id = 1
        #: Run-scoped correlation id.  Every process participating in
        #: one logical run (CLI client, daemon, pool workers) builds its
        #: tracer with the same id, so the stitched tree — and every
        #: ``repro-log/v1`` line — shares one handle.
        self.trace_id = trace_id or _new_trace_id()
        # Clock anchor: spans are stamped with ``perf_counter``, which
        # is not comparable across processes.  The (epoch, perf) pair
        # taken here lets ``graft`` rebase a worker's timestamps into
        # this tracer's frame via wall-clock time.
        self._anchor_epoch = time.time()
        self._anchor_perf = time.perf_counter()

    # -- active-span tracking (per thread) ------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle --------------------------------------------------
    def start_span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> Span:
        """Open a span; prefer the :meth:`span` context manager.

        ``parent`` overrides the thread-local current span — required
        when the span is opened on a worker thread but belongs under an
        orchestrator-side span (per-cone covering does this).
        """
        if parent is None:
            parent = self.current()
        with self._lock:
            span = Span(
                name=name,
                attrs=dict(attrs),
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                start=time.perf_counter(),
            )
            self._next_id += 1
            if parent is not None:
                parent.children.append(span)
            else:
                self._roots.append(span)
        self._stack().append(span)
        return span

    def finish_span(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    @contextmanager
    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> Iterator[Span]:
        """Context manager opening a child of the current (or given) span."""
        opened = self.start_span(name, parent=parent, **attrs)
        try:
            yield opened
        finally:
            self.finish_span(opened)

    # -- introspection / export ------------------------------------------
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def all_spans(self) -> list[Span]:
        return [span for root in self.roots() for span in root.walk()]

    def validate(self) -> list[str]:
        """Well-formedness problems of the recorded forest (empty = ok).

        Checks every span is closed, durations are non-negative, and
        each child's interval lies within its parent's.
        """
        problems: list[str] = []
        for root in self.roots():
            for span in root.walk():
                if not span.closed:
                    problems.append(f"span {span.name!r} (#{span.span_id}) never closed")
                    continue
                assert span.end is not None
                if span.end < span.start - _TIME_EPSILON:
                    problems.append(
                        f"span {span.name!r} (#{span.span_id}) ends before it starts"
                    )
                for child in span.children:
                    if child.parent_id != span.span_id:
                        problems.append(
                            f"span {child.name!r} (#{child.span_id}) has parent_id "
                            f"{child.parent_id}, expected {span.span_id}"
                        )
                    if child.start < span.start - _TIME_EPSILON:
                        problems.append(
                            f"span {child.name!r} (#{child.span_id}) starts before "
                            f"its parent {span.name!r}"
                        )
                    if (
                        child.closed
                        and span.closed
                        and child.end > span.end + _TIME_EPSILON
                    ):
                        problems.append(
                            f"span {child.name!r} (#{child.span_id}) ends after "
                            f"its parent {span.name!r}"
                        )
        return problems

    def assert_well_formed(self) -> None:
        problems = self.validate()
        if problems:
            raise ValueError("malformed trace:\n  " + "\n  ".join(problems))

    def to_dict(self) -> dict:
        return {
            "schema": "repro-trace/v1",
            "trace_id": self.trace_id,
            "clock": {"epoch": self._anchor_epoch, "perf": self._anchor_perf},
            "spans": [root.to_dict() for root in self.roots()],
        }

    # -- distributed propagation -----------------------------------------
    def context(self, span: Optional[Span] = None) -> SpanContext:
        """The :class:`SpanContext` to forward to a remote worker.

        ``span`` (default: this thread's current span) becomes the
        remote parent; span id 0 means "root of the remote side".
        """
        if span is None:
            span = self.current()
        return SpanContext(
            self.trace_id, span.span_id if span is not None else 0
        )

    def graft(self, payload: dict, parent: Span) -> list[Span]:
        """Re-parent an exported span forest under a local ``parent``.

        ``payload`` is another tracer's ``to_dict()`` — typically a
        pool worker's or the daemon's, shipped back inside a result.
        Its timestamps are rebased from the remote ``perf_counter``
        frame into this tracer's via the clock anchors, then clamped
        into ``parent``'s (closed) interval so anchor-capture jitter
        can never break ``validate()``'s containment checks.  Grafted
        spans get fresh ids from this tracer's counter; a worker span
        that never closed is closed at zero duration rather than
        poisoning the coordinator's tree.
        """
        if payload.get("schema") != "repro-trace/v1":
            raise ValueError(
                f"cannot graft schema {payload.get('schema')!r}; "
                "expected 'repro-trace/v1'"
            )
        remote_id = payload.get("trace_id")
        if remote_id is not None and remote_id != self.trace_id:
            raise ValueError(
                f"trace_id mismatch: grafting {remote_id!r} into "
                f"{self.trace_id!r}"
            )
        if not parent.closed:
            raise ValueError(
                f"graft parent {parent.name!r} must be closed first"
            )
        assert parent.end is not None
        clock = payload.get("clock")

        def convert(stamp: Optional[float]) -> Optional[float]:
            if stamp is None:
                return None
            if clock:
                epoch = clock["epoch"] + (stamp - clock["perf"])
                local = self._anchor_perf + (epoch - self._anchor_epoch)
            else:
                local = stamp
            return min(max(local, parent.start), parent.end)

        def build(node: dict, under: Span) -> Span:
            span = Span(
                name=str(node["name"]),
                attrs=dict(node.get("attrs") or {}),
                span_id=self._next_id,
                parent_id=under.span_id,
                start=convert(node["start"]),
            )
            self._next_id += 1
            end = convert(node.get("end"))
            span.end = span.start if end is None else max(end, span.start)
            under.children.append(span)
            for child in node.get("children") or ():
                build(child, span)
            return span

        with self._lock:
            return [build(root, parent) for root in payload.get("spans") or ()]

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots())})"


def span_shape(span: Span) -> tuple:
    """Canonical shape of a span subtree, ignoring timings and order.

    The shape is ``(name, key, sorted child shapes)`` where ``key`` is
    the span's identifying attribute (cone spans carry their root node
    as ``key``).  Two runs doing the same work — e.g. serial vs
    parallel covering of the same design — produce identical shapes
    even though child completion order and every timestamp differ.
    """
    return (
        span.name,
        span.attrs.get("key"),
        tuple(sorted(span_shape(child) for child in span.children)),
    )


def trace_shape(tracer: Tracer) -> tuple:
    """Order-insensitive shape of a tracer's whole forest."""
    return tuple(sorted(span_shape(root) for root in tracer.roots()))


class _NullSpan:
    """Inert span yielded by the null tracer; accepts and drops attrs."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    closed = True
    duration = 0.0
    span_id = 0
    parent_id = None

    def set_attr(self, **attrs: object) -> None:
        pass


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Do-nothing tracer used when tracing is disabled.

    ``span`` hands back one shared no-op context manager, so the
    disabled-tracing cost per instrumented phase is a method call and a
    ``with`` block — measured at <5% of the Table-5 workload
    (``benchmarks/bench_obs_overhead.py``).
    """

    __slots__ = ()
    #: Disabled tracing has no correlation id; instrumented sites test
    #: ``tracer.trace_id is not None`` to decide whether to propagate.
    trace_id = None

    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> _NullContext:
        return _NULL_CONTEXT

    def context(self, span: Optional[Span] = None) -> None:
        return None

    def graft(self, payload: dict, parent: object) -> list:
        return []

    def start_span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> _NullSpan:
        return _NULL_SPAN

    def finish_span(self, span: object) -> None:
        pass

    def current(self) -> None:
        return None

    def roots(self) -> list:
        return []

    def validate(self) -> list[str]:
        return []

    def to_dict(self) -> dict:
        return {"schema": "repro-trace/v1", "spans": []}


#: Shared no-op tracer; instrumented code does ``tracer = tracer or NULL_TRACER``.
NULL_TRACER = NullTracer()
