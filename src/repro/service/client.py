"""``ServiceClient`` — the stdlib HTTP client for ``repro serve``.

The CLI (``repro map --server``/``repro batch --server``), the service
tests, and the smoke harness all talk to the daemon through this one
class, so the wire contract (``repro-api/v1`` payloads over JSON/HTTP)
is exercised the same way everywhere.  Built on ``urllib.request`` —
the service stack adds no dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Union

from ..api.schema import (
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ExplainRequest,
    ExplainResponse,
    MapRequest,
    MapResponse,
    VerifyRequest,
    VerifyResponse,
)
from ..obs.tracer import TRACE_HEADER, SpanContext


class ServiceError(RuntimeError):
    """A non-2xx verdict from the service (or a transport failure)."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Parsed ``Retry-After`` header on 429/503 verdicts, else None.
        self.retry_after = retry_after


class ServiceClient:
    """A thin, synchronous client for one service instance."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        trace_context: Optional[SpanContext] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: When set, every request carries it in ``X-Repro-Trace`` so
        #: the daemon's spans (and its workers') join the caller's
        #: trace; responses then include the stitched subtree under a
        #: ``trace`` key for the caller to graft.
        self.trace_context = trace_context

    # -- transport --------------------------------------------------

    def _request_raw(
        self, method: str, path: str, payload: Optional[dict]
    ) -> bytes:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if self.trace_context is not None:
            headers[TRACE_HEADER] = self.trace_context.header_value()
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body or exc.reason
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                exc.code,
                str(message),
                float(retry_after) if retry_after else None,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: {exc.reason}") from exc

    def _request(self, method: str, path: str, payload: Optional[dict]) -> dict:
        return json.loads(self._request_raw(method, path, payload).decode("utf-8"))

    def _post(self, path: str, payload: dict) -> dict:
        return self._request("POST", path, payload)

    # -- typed endpoints --------------------------------------------

    def map(self, request: Union[MapRequest, dict]) -> MapResponse:
        payload = request.to_payload() if isinstance(request, MapRequest) else request
        return MapResponse.from_payload(self._post("/v1/map", payload))

    def batch(self, request: Union[BatchRequest, dict]) -> BatchResponse:
        payload = (
            request.to_payload() if isinstance(request, BatchRequest) else request
        )
        return BatchResponse.from_payload(self._post("/v1/batch", payload))

    def explain(self, request: Union[ExplainRequest, dict]) -> ExplainResponse:
        payload = (
            request.to_payload() if isinstance(request, ExplainRequest) else request
        )
        return ExplainResponse.from_payload(self._post("/v1/explain", payload))

    def verify(self, request: Union[VerifyRequest, dict]) -> VerifyResponse:
        payload = (
            request.to_payload() if isinstance(request, VerifyRequest) else request
        )
        return VerifyResponse.from_payload(self._post("/v1/verify", payload))

    def certify(
        self, request: Union[CertifyRequest, dict]
    ) -> CertifyResponse:
        payload = (
            request.to_payload() if isinstance(request, CertifyRequest) else request
        )
        return CertifyResponse.from_payload(self._post("/v1/certify", payload))

    # -- operational endpoints --------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz", None)

    def metrics(self) -> dict:
        """The service's ``repro-metrics/v1`` snapshot document."""
        return self._request("GET", "/metrics", None)

    def metrics_prometheus(self) -> str:
        """The service's metrics in Prometheus text exposition format."""
        raw = self._request_raw("GET", "/metrics?format=prometheus", None)
        return raw.decode("utf-8")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (boot handshake)."""
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceError as exc:
                last = exc
                time.sleep(interval)
        raise ServiceError(
            0, f"service at {self.base_url} not ready after {timeout}s: {last}"
        )


__all__ = ["ServiceClient", "ServiceError"]
