"""``repro.service`` — the persistent mapping daemon and its client.

``repro serve`` keeps libraries loaded, hazard annotations hot, and
matching indexes built across requests, so only the per-request phases
of the DAC'93 flow (decompose, match+filter, cover) run per call; the
once-per-library phases (Table 2 annotation, index construction) are
paid at boot or on first use and then amortized forever.

Endpoints (all payloads are ``repro-api/v1`` documents, see
``docs/api.md``):

* ``POST /v1/map``     — one mapping job (``MapRequest``)
* ``POST /v1/batch``   — a designs x libraries sweep (``BatchRequest``)
* ``POST /v1/explain`` — map + render the decision log (``ExplainRequest``)
* ``POST /v1/verify``  — check a mapped BLIF (``VerifyRequest``)
* ``GET  /healthz``    — liveness, drain state, in-flight count
* ``GET  /metrics``    — ``repro-metrics/v1`` snapshot of the registry

Quickstart::

    from repro.service import ServiceConfig, MappingService
    from repro.service.client import ServiceClient
    from repro.api import MapRequest

    with MappingService(ServiceConfig(port=0)).running() as service:
        client = ServiceClient(service.url)
        response = client.map(MapRequest(design="dme", library="CMOS3"))
"""

from .client import ServiceClient, ServiceError  # noqa: F401
from .daemon import (  # noqa: F401
    MappingService,
    ServiceConfig,
    serve,
)

__all__ = [
    "MappingService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "serve",
]
