"""The persistent mapping daemon behind ``repro serve``.

Architecture: a :class:`MappingService` owns the warm state — the
process-wide annotated-library cache (:func:`repro.api.shared_library`),
a :class:`~repro.obs.metrics.MetricsRegistry`, a tracer — and an
:class:`~repro.batch.backends.ExecutorBackend` pool that request
handlers dispatch onto via the generic
:meth:`~repro.batch.backends.ExecutorBackend.submit_call` hook.  The
HTTP layer (:class:`_Handler` on a ``ThreadingHTTPServer``) is a thin
shell: it decodes the body, hands ``(method, path, payload)`` to
:meth:`MappingService.handle`, and writes the JSON verdict back.

Operational contracts:

* **Admission control** — at most ``queue_limit`` requests are admitted
  (queued + running); the next one is answered ``429`` with a
  ``Retry-After`` header rather than piling onto the pool.
* **Budgets** — requests without an explicit ``deadline_seconds``
  inherit the service default; overruns degrade inside the facade to
  the trivial depth-1 cover (``fallback="trivial-cover"``), never to an
  error.
* **Graceful drain** — SIGTERM/SIGINT flips the service to draining
  (new requests get ``503``), waits for in-flight requests to finish,
  then stops the listener and writes the trace/metrics artifacts.
* **Telemetry** — every request runs under a ``service.request`` span
  and bumps ``service.requests[.{endpoint}]`` counters plus a
  ``service.request_seconds`` histogram; mapping work shares the
  service registry on in-process backends, so warm-vs-cold annotation
  behaviour is visible in ``/metrics`` (``library.annotate.*``).
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
import urllib.parse
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from ..api.facade import (
    execute_batch,
    execute_certify,
    execute_explain,
    execute_map,
    execute_verify,
    loaded_libraries,
    shared_library,
)
from ..api.schema import (
    ApiError,
    BatchRequest,
    CertifyRequest,
    ExplainRequest,
    MapRequest,
    VerifyRequest,
    parse_request,
)
from ..library import anncache
from ..obs import log as obs_log
from ..obs.export import (
    metrics_to_dict,
    prometheus_text,
    write_metrics,
    write_trace,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACE_HEADER, SpanContext, Tracer
from ..testing import faults
from ..testing.faults import FaultPlan

#: Seconds a 429'd client is told to back off before retrying.
RETRY_AFTER_SECONDS = 1

#: Endpoint path -> the request kind it accepts.
ENDPOINT_KINDS = {
    "/v1/map": MapRequest,
    "/v1/batch": BatchRequest,
    "/v1/explain": ExplainRequest,
    "/v1/verify": VerifyRequest,
    "/v1/certify": CertifyRequest,
}


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs for one ``repro serve`` instance."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port (tests); the bound port is
    #: reported by :attr:`MappingService.port` and the startup banner.
    port: int = 8347
    #: Executor substrate for request work: ``serial|threads|processes``.
    #: ``threads`` is the serving default — workers share the warm
    #: library cache and the service metrics registry; ``processes``
    #: trades both away for covering parallelism.
    backend: str = "threads"
    workers: int = 2
    #: Max requests admitted at once (queued + running); beyond it, 429.
    queue_limit: int = 8
    #: Default per-request budget; ``None`` means unbounded.
    deadline_seconds: Optional[float] = None
    cache_dir: anncache.CacheDir = None
    #: Libraries to load, hazard-annotate, and index at boot so even the
    #: first request skips the once-per-library phases.
    preload: tuple = ()
    #: Deterministic fault plan (tests and drills only).
    fault_plan: Optional[FaultPlan] = None
    #: Artifacts written at shutdown (after drain), if set.
    trace_path: Optional[Union[str, Path]] = None
    metrics_path: Optional[Union[str, Path]] = None


def _execute_request(
    request,
    deadline_seconds: Optional[float] = None,
    cache_dir: anncache.CacheDir = None,
    fault_plan: Optional[FaultPlan] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace_context: Optional[SpanContext] = None,
) -> dict:
    """Run one parsed API request to its response payload.

    Module-level and argument-picklable on purpose: this is the
    function the service submits to its executor backend, and on the
    process backend it crosses a pickle boundary (``metrics`` must then
    be ``None`` — a registry cannot be shared across processes).

    ``trace_context`` carries the request's ``trace_id`` across that
    same fence: the worker maps under a same-id tracer and ships its
    span tree back as ``payload["trace"]`` for the dispatcher to graft
    under the ``service.request`` span.
    """
    faults.install_plan(fault_plan, job=getattr(request, "design", None) or "-",
                        attempt=1)
    tracer = (
        Tracer(trace_id=trace_context.trace_id)
        if trace_context is not None
        else None
    )
    try:
        if isinstance(request, MapRequest):
            if request.deadline_seconds is None and deadline_seconds is not None:
                request = dataclasses.replace(
                    request, deadline_seconds=deadline_seconds
                )
            response = execute_map(
                request, cache_dir=cache_dir, metrics=metrics, tracer=tracer
            )
        elif isinstance(request, ExplainRequest):
            if request.deadline_seconds is None and deadline_seconds is not None:
                request = dataclasses.replace(
                    request, deadline_seconds=deadline_seconds
                )
            response = execute_explain(
                request, cache_dir=cache_dir, metrics=metrics, tracer=tracer
            )
        elif isinstance(request, VerifyRequest):
            response = execute_verify(request)
        elif isinstance(request, CertifyRequest):
            response = execute_certify(
                request, cache_dir=cache_dir, metrics=metrics, tracer=tracer
            )
        elif isinstance(request, BatchRequest):
            if request.deadline_seconds is None and deadline_seconds is not None:
                request = dataclasses.replace(
                    request, deadline_seconds=deadline_seconds
                )
            response = execute_batch(
                request, cache_dir=cache_dir, metrics=metrics, tracer=tracer
            )
        else:  # pragma: no cover - ENDPOINT_KINDS guards the dispatch
            raise ApiError(f"unsupported request type {type(request).__name__}")
        payload = response.to_payload()
        if tracer is not None:
            payload["trace"] = tracer.to_dict()
        return payload
    finally:
        faults.clear_plan()


class MappingService:
    """Warm mapping state plus the request dispatcher (HTTP-agnostic)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        from ..batch.backends import create_backend

        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.backend = create_backend(self.config.backend, self.config.workers)
        self._admission = threading.BoundedSemaphore(self.config.queue_limit)
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._draining = False
        self._server: Optional[ThreadingHTTPServer] = None
        self.started_at = time.time()

    # -- warm state -------------------------------------------------

    def preload(self) -> None:
        """Load, annotate, and index the configured libraries at boot."""
        for name in self.config.preload:
            with self.tracer.span("service.preload", library=name):
                library = shared_library(name, self.config.cache_dir)
                if not library.annotated:
                    library.annotate_hazards(
                        cache_dir=self.config.cache_dir,
                        tracer=self.tracer,
                        metrics=self.metrics,
                    )
                library.build_matching_indexes()

    # -- request dispatch -------------------------------------------

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    def handle(
        self,
        method: str,
        path: str,
        payload: Optional[dict],
        trace_header: Optional[str] = None,
    ):
        """Dispatch one request; returns ``(status, body, headers)``.

        ``trace_header`` is the raw ``X-Repro-Trace`` value, if the
        client sent one; a traced request runs under a per-request
        tracer that adopts the caller's ``trace_id`` and the full span
        tree is returned in the response body (``body["trace"]``).
        """
        parts = urllib.parse.urlsplit(path)
        endpoint = parts.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parts.query)
        name = endpoint.rsplit("/", 1)[-1] or "root"
        started = time.perf_counter()
        status, span_id, trace_id = 500, None, None
        context: Optional[SpanContext] = None
        # One access-log event and one per-endpoint latency sample for
        # *every* request, including malformed and 404 ones (finally).
        try:
            try:
                context = SpanContext.parse(trace_header)
            except ValueError as exc:
                self.metrics.counter("service.errors").inc()
                status = 400
                return status, {
                    "error": f"bad {TRACE_HEADER} header: {exc}"
                }, {}
            if method == "GET" and endpoint == "/healthz":
                status, body, headers = 200, self._health(), {}
            elif method == "GET" and endpoint == "/metrics":
                status, body, headers = self._metrics_endpoint(query)
            else:
                kind = ENDPOINT_KINDS.get(endpoint)
                if kind is None or method != "POST":
                    status = 404
                    body = {"error": f"no such endpoint: {method} {path}"}
                    headers = {}
                else:
                    span_box: dict = {}
                    status, body, headers = self._dispatch(
                        endpoint, kind, payload, context, span_box
                    )
                    span_id = span_box.get("span_id")
                    trace_id = span_box.get("trace_id")
            return status, body, headers
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.histogram(
                f"service.request.latency.{name}"
            ).observe(elapsed)
            if obs_log.enabled():
                obs_log.event(
                    "repro.service",
                    "request",
                    trace_id=trace_id or (
                        context.trace_id if context else self.tracer.trace_id
                    ),
                    span_id=span_id,
                    endpoint=name,
                    method=method,
                    status=status,
                    seconds=round(elapsed, 6),
                    queue_depth=self.inflight,
                )

    def _metrics_endpoint(self, query: dict):
        fmt = (query.get("format") or ["json"])[0]
        if fmt == "prometheus":
            return 200, prometheus_text(self.metrics), {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }
        if fmt != "json":
            return 400, {"error": f"unknown metrics format {fmt!r}"}, {}
        return 200, metrics_to_dict(self.metrics), {}

    def _health(self) -> dict:
        with self._state_lock:
            status = "draining" if self._draining else "ok"
            inflight = self._inflight
        return {
            "status": status,
            "inflight": inflight,
            "queue_depth": inflight,
            "queue_limit": self.config.queue_limit,
            "queue_available": max(self.config.queue_limit - inflight, 0),
            "backend": self.backend.name,
            "workers": self.config.workers,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "libraries": loaded_libraries(),
            "result_cache": self._result_cache_health(),
        }

    def _result_cache_health(self) -> dict:
        """Result-cache occupancy for load balancers and smoke tests."""
        from ..cache.resultcache import MEMORY, result_entries

        entries = result_entries(self.config.cache_dir)
        return {
            "memory_entries": len(MEMORY),
            "disk_entries": len(entries),
            "disk_bytes": sum(
                path.stat().st_size for path in entries if path.exists()
            ),
        }

    def _dispatch(
        self,
        endpoint: str,
        kind,
        payload: Optional[dict],
        context: Optional[SpanContext] = None,
        span_box: Optional[dict] = None,
    ):
        name = endpoint.rsplit("/", 1)[-1]
        self.metrics.counter("service.requests").inc()
        self.metrics.counter(f"service.requests.{name}").inc()
        if self.draining:
            self.metrics.counter("service.rejected.503").inc()
            return 503, {"error": "service is draining"}, {
                "Retry-After": str(RETRY_AFTER_SECONDS)
            }
        if payload is None:
            self.metrics.counter("service.errors").inc()
            return 400, {"error": "request body must be a JSON object"}, {}
        try:
            request = parse_request(payload)
            if not isinstance(request, kind):
                raise ApiError(
                    f"{endpoint} expects a {kind.kind!r} request, "
                    f"got {payload.get('kind')!r}"
                )
        except ApiError as exc:
            self.metrics.counter("service.errors").inc()
            return 400, {"error": str(exc)}, {}
        if not self._admission.acquire(blocking=False):
            self.metrics.counter("service.rejected.429").inc()
            return 429, {"error": "request queue is full"}, {
                "Retry-After": str(RETRY_AFTER_SECONDS)
            }
        with self._state_lock:
            self._inflight += 1
        started = time.perf_counter()
        # A traced request adopts the caller's trace_id on a tracer of
        # its own (the service tracer aggregates only untraced work, so
        # concurrent traced requests never interleave in one tree).
        tracer = (
            Tracer(trace_id=context.trace_id)
            if context is not None
            else self.tracer
        )
        try:
            request_span = tracer.start_span(
                "service.request", endpoint=name,
                design=getattr(request, "design", None),
                library=getattr(request, "library", None),
            )
            if context is not None:
                request_span.set_attr(remote_parent=context.span_id)
            if span_box is not None:
                span_box["span_id"] = request_span.span_id
                span_box["trace_id"] = tracer.trace_id
            try:
                # A process pool cannot share the registry (or the fault
                # plan's thread-local state) across the pickle fence.
                in_process = not self.backend.supports_crash_isolation
                future = self.backend.submit_call(
                    _execute_request,
                    request,
                    self.config.deadline_seconds,
                    self.config.cache_dir,
                    self.config.fault_plan if in_process else None,
                    self.metrics if in_process else None,
                    tracer.context(request_span) if context is not None
                    else None,
                )
                body = future.result()
            finally:
                tracer.finish_span(request_span)
            if context is not None and isinstance(body, dict):
                worker_trace = body.pop("trace", None)
                if worker_trace:
                    tracer.graft(worker_trace, parent=request_span)
                body["trace"] = tracer.to_dict()
            if body.get("fallback"):
                self.metrics.counter("service.fallbacks").inc()
            return 200, body, {}
        except ApiError as exc:
            self.metrics.counter("service.errors").inc()
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            self.metrics.counter("service.errors").inc()
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        finally:
            self.metrics.histogram("service.request_seconds").observe(
                time.perf_counter() - started
            )
            self._admission.release()
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    # -- lifecycle --------------------------------------------------

    @property
    def url(self) -> str:
        assert self._server is not None, "service is not listening"
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        assert self._server is not None, "service is not listening"
        return self._server.server_address[1]

    def start(self) -> ThreadingHTTPServer:
        """Bind the listener (without entering ``serve_forever``)."""
        self.preload()
        handler = _make_handler(self)
        server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        # Drain correctness: handler threads must be joinable so
        # server_close() blocks until in-flight responses are written.
        server.daemon_threads = False
        server.block_on_close = True
        self._server = server
        return server

    def drain(self) -> None:
        """Stop admitting work, wait for in-flight requests to finish."""
        with self._idle:
            self._draining = True
            while self._inflight:
                self._idle.wait()
        self.backend.shutdown()

    def shutdown(self) -> None:
        """Drain, stop the listener, and write the telemetry artifacts."""
        self.drain()
        if self._server is not None:
            self._server.shutdown()
        if self.config.trace_path is not None:
            write_trace(self.config.trace_path, self.tracer, self.metrics)
        if self.config.metrics_path is not None:
            write_metrics(self.config.metrics_path, self.metrics)

    @contextmanager
    def running(self):
        """In-process serving context (tests and benchmarks)."""
        server = self.start()
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        try:
            yield self
        finally:
            self.shutdown()
            server.server_close()
            thread.join(timeout=10)


def _make_handler(service: MappingService):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # the tracer is the access log

        def _reply(self, status: int, body, headers: dict) -> None:
            # A ``str`` body is preformatted text (Prometheus exposition);
            # anything else is a JSON document.
            if isinstance(body, str):
                data = body.encode("utf-8")
                content_type = headers.pop(
                    "Content-Type", "text/plain; charset=utf-8"
                )
            else:
                data = json.dumps(body).encode("utf-8")
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for key, value in headers.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)
            # One request per connection: a drained server must not sit
            # on idle keep-alive sockets waiting for a timeout.
            self.close_connection = True

        def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
            status, body, headers = service.handle(
                "GET", self.path, None,
                trace_header=self.headers.get(TRACE_HEADER),
            )
            self._reply(status, body, headers)

        def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else None
                if payload is not None and not isinstance(payload, dict):
                    payload = None
            except (ValueError, UnicodeDecodeError):
                payload = None
            status, body, headers = service.handle(
                "POST", self.path, payload,
                trace_header=self.headers.get(TRACE_HEADER),
            )
            self._reply(status, body, headers)

    return _Handler


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit status.

    Prints ``serving on http://HOST:PORT`` once the socket is bound (the
    CLI test and the smoke harness both wait for that line), then blocks
    in ``serve_forever``.  On signal the shutdown sequence runs on a
    helper thread — drain, stop the listener, write artifacts — while
    the main thread falls out of ``serve_forever`` and joins handlers
    via ``server_close``.
    """
    service = MappingService(config)
    server = service.start()
    stop = threading.Event()

    def _signal_shutdown(signum, frame):  # noqa: ARG001 - signal signature
        if not stop.is_set():
            stop.set()
            threading.Thread(
                target=service.shutdown, name="repro-serve-drain"
            ).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _signal_shutdown)
    print(f"serving on {service.url}", flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("drained; bye", flush=True)
    return 0


__all__ = [
    "ENDPOINT_KINDS",
    "MappingService",
    "RETRY_AFTER_SECONDS",
    "ServiceConfig",
    "serve",
]
