"""File formats: equation files, BLIF-style netlists, genlib libraries.

Interchange with the ecosystems the paper sits between: logic
optimizers emit equation files (``.eqn``-style), mappers consume
genlib-flavoured library descriptions, and mapped networks are
exchanged as BLIF.  The dialects here are deliberately small but
round-trip everything this package produces.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from ..boolean.cover import Cover
from ..boolean.cube import Cube, bit_indices
from ..boolean.expr import parse
from ..library.cell import LibraryCell
from ..library.library import Library
from ..network.netlist import Netlist


class FormatError(Exception):
    """Raised on malformed input files."""


# ----------------------------------------------------------------------
# Equation files
# ----------------------------------------------------------------------

def write_equations(netlist: Netlist, stream: TextIO) -> None:
    """Write a network as ``name = expression;`` lines.

    Gates are flattened per output (structure of each output cone is
    preserved by the expression's shape).
    """
    stream.write(f"# network {netlist.name}\n")
    stream.write(f".inputs {' '.join(netlist.inputs)}\n")
    for output in netlist.outputs:
        expr = netlist.collapse(output)
        stream.write(f"{output} = {expr.to_string()};\n")


def read_equations(stream: TextIO, name: str = "net") -> Netlist:
    """Read a ``name = expression;`` file back into a network."""
    equations: dict[str, str] = {}
    declared_inputs: list[str] | None = None
    buffer = ""
    for raw in stream:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".inputs"):
            declared_inputs = line.split()[1:]
            continue
        buffer += " " + line
        while ";" in buffer:
            statement, buffer = buffer.split(";", 1)
            if "=" not in statement:
                raise FormatError(f"missing '=' in {statement.strip()!r}")
            target, text = statement.split("=", 1)
            target = target.strip()
            if not target.isidentifier():
                raise FormatError(f"bad signal name {target!r}")
            if target in equations:
                raise FormatError(f"duplicate definition of {target!r}")
            equations[target] = text.strip()
    if buffer.strip():
        raise FormatError("trailing input without ';'")
    if not equations:
        raise FormatError("no equations found")
    return Netlist.from_equations(equations, name=name, inputs=declared_inputs)


# ----------------------------------------------------------------------
# BLIF (subset)
# ----------------------------------------------------------------------

def write_blif(netlist: Netlist, stream: TextIO) -> None:
    """Write the network in BLIF: one ``.names`` block per gate.

    Gate functions are emitted as their SOP over the fanins, cube per
    line — structure-preserving for two-level gate functions (library
    cells and base gates alike).
    """
    stream.write(f".model {netlist.name}\n")
    stream.write(".inputs " + " ".join(netlist.inputs) + "\n")
    stream.write(".outputs " + " ".join(netlist.outputs) + "\n")
    for node_name in netlist.topological_order():
        node = netlist.nodes[node_name]
        if not node.is_gate():
            continue
        assert node.func is not None
        fanins = list(node.fanins)
        cover = node.func.to_cover(fanins)
        stream.write(".names " + " ".join(fanins + [node_name]) + "\n")
        for cube in cover:
            row = []
            for i in range(len(fanins)):
                if not cube.used >> i & 1:
                    row.append("-")
                elif cube.phase >> i & 1:
                    row.append("1")
                else:
                    row.append("0")
            stream.write("".join(row) + " 1\n")
    for output in netlist.outputs:
        driver = netlist.nodes[output].fanins[0]
        if driver != output:
            stream.write(f".names {driver} {output}\n1 1\n")
    stream.write(".end\n")


def read_blif(stream: TextIO) -> Netlist:
    """Read the BLIF subset written by :func:`write_blif`."""
    lines: list[str] = []
    for raw in stream:
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            raise FormatError("line continuations are not supported")
        if line.strip():
            lines.append(line.strip())

    model = "net"
    inputs: list[str] = []
    outputs: list[str] = []
    tables: list[tuple[list[str], str, list[str]]] = []
    index = 0
    while index < len(lines):
        line = lines[index]
        index += 1
        if line.startswith(".model"):
            parts = line.split()
            model = parts[1] if len(parts) > 1 else model
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            signals = line.split()[1:]
            if not signals:
                raise FormatError(".names with no signals")
            *fanins, target = signals
            rows = []
            while index < len(lines) and not lines[index].startswith("."):
                rows.append(lines[index])
                index += 1
            tables.append((fanins, target, rows))
        elif line.startswith(".end"):
            break
        else:
            raise FormatError(f"unsupported BLIF construct {line!r}")

    net = Netlist(model)
    alias: dict[str, str] = {}
    for name in inputs:
        net.add_input(name)
        alias[name] = name
    pending = list(tables)
    while pending:
        progress = False
        for entry in list(pending):
            fanins, target, rows = entry
            if not all(f in alias for f in fanins):
                continue
            cubes = []
            for row in rows:
                parts = row.split()
                if len(parts) != 2 or parts[1] != "1":
                    raise FormatError(f"unsupported .names row {row!r}")
                pattern = parts[0]
                if len(pattern) != len(fanins):
                    raise FormatError(f"row width mismatch in {row!r}")
                used = phase = 0
                for i, ch in enumerate(pattern):
                    if ch == "1":
                        used |= 1 << i
                        phase |= 1 << i
                    elif ch == "0":
                        used |= 1 << i
                    elif ch != "-":
                        raise FormatError(f"bad cube character {ch!r}")
                cubes.append(Cube(used, phase, len(fanins)))
            cover = Cover(cubes, len(fanins))
            # Outputs get their own alias node so a later buffer block
            # or a name collision cannot clash with the output name.
            if target in outputs or target in net.nodes:
                gate_name = net.fresh_name(f"{target}_g")
            else:
                gate_name = target
            net.add_sop_gate(gate_name, cover, [alias[f] for f in fanins])
            alias[target] = gate_name
            pending.remove(entry)
            progress = True
        if not progress:
            raise FormatError("cyclic or dangling .names dependencies")
    for output in outputs:
        if output not in alias:
            raise FormatError(f"output {output!r} is never driven")
        net.add_output(output, alias[output])
    return net


# ----------------------------------------------------------------------
# genlib (subset)
# ----------------------------------------------------------------------

def write_genlib(library: Library, stream: TextIO) -> None:
    """Write a library as genlib-style GATE lines.

    ``GATE <name> <area> <output>=<bff>; PIN * <delay> ...`` — the BFF
    is this package's factored-form syntax.
    """
    stream.write(f"# library {library.name}\n")
    for cell in library.cells:
        stream.write(
            f"GATE {cell.name} {cell.area:g} "
            f"O={cell.expression.to_string()};"
            f" PIN * NONINV 1 999 {cell.delay:g} 0 {cell.delay:g} 0\n"
        )


def read_genlib(stream: TextIO, name: str = "lib") -> Library:
    """Read the genlib subset written by :func:`write_genlib`."""
    cells: list[LibraryCell] = []
    for raw in stream:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if not line.startswith("GATE"):
            raise FormatError(f"unsupported genlib line {line!r}")
        head, __, pin_part = line.partition(";")
        parts = head.split(None, 3)
        if len(parts) != 4:
            raise FormatError(f"malformed GATE line {line!r}")
        __, cell_name, area_text, function = parts
        if "=" not in function:
            raise FormatError(f"missing '=' in {function!r}")
        __, text = function.split("=", 1)
        delay = 1.0
        pin_fields = pin_part.split()
        if len(pin_fields) >= 6:
            try:
                delay = float(pin_fields[5])
            except ValueError as exc:
                raise FormatError(f"bad delay in {pin_part!r}") from exc
        cells.append(
            LibraryCell.from_text(
                cell_name, text.strip(), area=float(area_text), delay=delay
            )
        )
    return Library(name, cells)
