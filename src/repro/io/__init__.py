"""File-format interchange: equations, BLIF, genlib."""

from .formats import (
    FormatError,
    read_blif,
    read_equations,
    read_genlib,
    write_blif,
    write_equations,
    write_genlib,
)

__all__ = [
    "FormatError",
    "read_blif",
    "read_equations",
    "read_genlib",
    "write_blif",
    "write_equations",
    "write_genlib",
]
