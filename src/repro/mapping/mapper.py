"""The technology mappers: synchronous ``tmap`` and async ``async_tmap``.

Section 3's procedures, verbatim in structure::

    procedure tmap(network, library) {
        decomposed-network = tech-decomp(network);
        cones = partition(decomposed-network);
        foreach output in cones { find_best_cover(output, library); }
    }

    procedure async_tmap(network, library) {
        augment-library-with-hazard-info(library);
        decomposed-network = async_tech_decomp(network);
        cones = partition(decomposed-network);
        foreach output in cones { find-best-async-cover(output, library); }
    }

The two differ in (a) the decomposition (hazard-preserving vs.
simplifying), (b) library annotation, and (c) the hazardous-match
filter inside covering.
"""

from __future__ import annotations

import os
import time
import warnings
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Optional, Union

from ..deadline import Deadline
from ..library import anncache
from ..library.library import AnnotationReport, Library
from ..network.decompose import async_tech_decomp, tech_decomp
from ..network.netlist import Netlist
from ..network.partition import Cone, partition
from ..obs import log as obs_log
from ..obs.explain import ConeExplain, ExplainLog
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from ..testing import faults
from .cover import ConeCover, CoverStats, cover_cone


@dataclass
class MappingOptions:
    """Mapper knobs; the paper runs everything at depth 5.

    ``input_bursts`` (a list of
    :class:`repro.mapping.dontcare.InputBurst`) switches on the
    hazard-don't-care extension of section 6: hazards no specified
    burst can excite are waived during matching.

    ``workers`` controls parallel cone covering: ``1`` (default) covers
    cones serially, ``0`` auto-sizes to the CPU count, and any other
    value is a thread-pool width.  Results are deterministic regardless
    of worker count — cones are independent given the shared hazard
    cache, and results are merged in cone order.

    ``annotation_cache_dir`` is forwarded to
    :meth:`repro.library.library.Library.annotate_hazards` so the
    one-time Table-2 annotation cost can be replayed from disk.  Pass
    :data:`repro.library.anncache.DISABLED` to bypass the cache even
    when the ``REPRO_ANNOTATION_CACHE`` environment toggle is set.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) records the run as
    a hierarchical span tree — annotate → decompose → partition →
    per-cone covering (cluster enumeration + match/cover) → netlist
    build; ``None`` disables tracing at no measurable cost.  ``metrics``
    supplies the :class:`repro.obs.metrics.MetricsRegistry` the run
    publishes into; when ``None`` each result gets a private registry
    (``MappingResult.metrics``).  Tracers and registries are plain
    per-run objects — concurrent ``map_network`` calls with distinct
    ones never share state.

    ``explain`` records decision-level provenance: every (cluster, cell)
    candidate the covering DP examined, with its outcome and — for
    hazard rejections — the offending §4 hazard plus a replayable
    witness transition (``MappingResult.explain``, an
    :class:`repro.obs.explain.ExplainLog`).  Per-cone recorders are
    merged in cone order, so the log is identical for any ``workers``
    value; disabled, the hot path pays one ``is None`` check per match.

    ``deadline`` (a :class:`repro.deadline.Deadline`) bounds the run
    cooperatively: the mapper checks it before annotation, before each
    cone's covering, and before netlist assembly, raising
    :class:`repro.deadline.DeadlineExceeded` at the first checkpoint
    past the budget.  The batch engine catches that and degrades to a
    trivial depth-1 cover; direct callers see the exception.
    """

    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    exhaustive_annotation: bool = True
    input_bursts: Optional[list] = None
    workers: int = 1
    annotation_cache_dir: anncache.CacheDir = None
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    explain: bool = False
    deadline: Optional[Deadline] = None

    def resolved_workers(self) -> int:
        if self.workers == 0:
            return os.cpu_count() or 1
        return max(1, self.workers)


@dataclass
class MappingResult:
    """A mapped network plus quality/runtime accounting."""

    mapped: Netlist
    source: Netlist
    library: Library
    mode: str
    area: float
    delay: float
    elapsed: float
    annotate_elapsed: float = 0.0
    stats: CoverStats = field(default_factory=CoverStats)
    covers: list[ConeCover] = field(default_factory=list)
    annotation_report: Optional[AnnotationReport] = None
    workers: int = 1
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    explain: Optional[ExplainLog] = None

    def cell_usage(self) -> dict[str, int]:
        return self.mapped.cell_usage()

    def summary(self) -> dict[str, float]:
        return {
            "area": self.area,
            "delay": round(self.delay, 2),
            "cells": float(sum(self.cell_usage().values())),
            "cpu": round(self.elapsed, 3),
        }


#: Historical aliases for option keywords the pre-``repro.api`` surface
#: accepted in various spellings.
_LEGACY_ALIASES = {"depth": "max_depth"}


def _legacy_options(
    options: Optional[MappingOptions], legacy: dict, caller: str
) -> MappingOptions:
    """Translate deprecated per-knob keywords into ``MappingOptions``.

    The supported names are exactly the ``MappingOptions`` fields (plus
    a few historical aliases); anything else is a ``TypeError``, and
    any use at all warns — new code should pass a
    :class:`repro.api.MapRequest` through :func:`repro.api.execute_map`
    or build ``MappingOptions`` explicitly.
    """
    if not legacy:
        return options or MappingOptions()
    if options is not None:
        raise TypeError(
            f"{caller}() takes either an options object or legacy keyword "
            "options, not both"
        )
    known = {f.name for f in fields(MappingOptions)}
    normalized = {_LEGACY_ALIASES.get(key, key): value
                  for key, value in legacy.items()}
    unknown = sorted(set(normalized) - known)
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword argument(s): "
            f"{', '.join(unknown)}"
        )
    warnings.warn(
        f"passing mapping options to {caller}() as keywords "
        f"({', '.join(sorted(legacy))}) is deprecated; pass a "
        "repro.api.MapRequest to repro.api.execute_map, or a "
        "MappingOptions object",
        DeprecationWarning,
        stacklevel=3,
    )
    return MappingOptions(**normalized)


def tmap(
    network: Netlist,
    library: Library,
    options: Optional[MappingOptions] = None,
    **legacy,
) -> MappingResult:
    """Synchronous technology mapping (the CERES-style baseline).

    Uses the simplifying decomposition and ignores hazards entirely —
    hence unsafe for fundamental-mode asynchronous designs (Figure 3).
    """
    options = _legacy_options(options, legacy, "tmap")
    tracer = options.tracer or NULL_TRACER
    metrics = options.metrics if options.metrics is not None else MetricsRegistry()
    start = time.perf_counter()
    with tracer.span(
        "tmap", design=network.name, library=library.name
    ) as root_span:
        decomposed = tech_decomp(network, tracer=tracer)
        result = _map_decomposed(
            network,
            decomposed,
            library,
            options,
            hazard_filter=False,
            mode="sync",
            metrics=metrics,
        )
    result.elapsed = time.perf_counter() - start
    _finalize_metrics(result)
    _log_map_done(result, network, library, tracer, root_span)
    return result


def async_tmap(
    network: Netlist,
    library: Library,
    options: Optional[MappingOptions] = None,
    **legacy,
) -> MappingResult:
    """Asynchronous technology mapping (the paper's contribution).

    Hazard-annotates the library (once), decomposes hazard-preservingly
    and screens hazardous-cell matches, so the mapped network has no
    logic hazard absent from the source (Theorem 3.2).
    """
    options = _legacy_options(options, legacy, "async_tmap")
    tracer = options.tracer or NULL_TRACER
    metrics = options.metrics if options.metrics is not None else MetricsRegistry()
    start = time.perf_counter()
    annotate_elapsed = 0.0
    annotation_report = None
    with tracer.span(
        "async_tmap", design=network.name, library=library.name
    ) as root_span:
        faults.fire("annotate.library", options.deadline)
        if options.deadline is not None:
            options.deadline.check("annotate.library")
        if not library.annotated:
            annotation_report = library.annotate_hazards(
                exhaustive=options.exhaustive_annotation,
                cache_dir=options.annotation_cache_dir,
                tracer=tracer,
                metrics=metrics,
            )
            annotate_elapsed = annotation_report.elapsed
        decomposed = async_tech_decomp(network, tracer=tracer)
        result = _map_decomposed(
            network,
            decomposed,
            library,
            options,
            hazard_filter=True,
            mode="async",
            metrics=metrics,
        )
    result.elapsed = time.perf_counter() - start
    result.annotate_elapsed = annotate_elapsed
    result.annotation_report = annotation_report
    _finalize_metrics(result)
    _log_map_done(result, network, library, tracer, root_span)
    return result


def _log_map_done(result, network, library, tracer, root_span) -> None:
    """Emit the run-level ``map.done`` event (no-op without ``--log``)."""
    if not obs_log.enabled():
        return
    obs_log.event(
        "repro.mapping",
        "map.done",
        trace_id=tracer.trace_id,
        span_id=root_span.span_id or None,
        design=network.name,
        library=library.name,
        mode=result.mode,
        area=result.area,
        delay=round(result.delay, 4),
        cones=result.stats.cones,
        elapsed_seconds=round(result.elapsed, 4),
        workers=result.workers,
    )


def map_network(
    design: Union[str, Netlist],
    library: Union[str, Library],
    options: Optional[MappingOptions] = None,
    mode: str = "async",
    **legacy,
) -> MappingResult:
    """Map one design onto one library — the single-job entry point.

    ``design`` is a :class:`~repro.network.netlist.Netlist` or a
    benchmark-catalog name; ``library`` a :class:`Library` or a standard
    library name.  ``mode`` selects :func:`async_tmap` (``"async"``,
    the paper's hazard-safe flow) or :func:`tmap` (``"sync"``).  The
    batch engine's workers call exactly this function, which is what
    makes ``repro batch`` results byte-identical to per-design
    ``repro map`` runs.
    """
    if isinstance(design, str):
        from ..burstmode.benchmarks import synthesize_benchmark

        design = synthesize_benchmark(design).netlist(design)
    if isinstance(library, str):
        from ..library.standard import load_library

        library = load_library(library)
    if mode not in ("async", "sync"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    options = _legacy_options(options, legacy, "map_network")
    mapper = async_tmap if mode == "async" else tmap
    return mapper(design, library, options)


def _map_decomposed(
    source: Netlist,
    decomposed: Netlist,
    library: Library,
    options: MappingOptions,
    hazard_filter: bool,
    mode: str,
    metrics: Optional[MetricsRegistry] = None,
) -> MappingResult:
    if metrics is None:
        metrics = (
            options.metrics if options.metrics is not None else MetricsRegistry()
        )
    if hazard_filter and not library.annotated:
        library.annotate_hazards(
            exhaustive=options.exhaustive_annotation,
            cache_dir=options.annotation_cache_dir,
        )
    dont_cares = None
    if hazard_filter and options.input_bursts:
        from .dontcare import HazardDontCares

        dont_cares = HazardDontCares(decomposed, options.input_bursts)
    # Matching consults both indexes on every cluster; build them before
    # any covering (and before worker threads could race the lazy build).
    library.build_matching_indexes()
    tracer = options.tracer or NULL_TRACER
    cones = partition(decomposed, tracer=tracer)
    workers = options.resolved_workers()

    # Cone spans parent to the covering span explicitly: with workers > 1
    # they open on pool threads, where the thread-local stack is empty.
    cover_span = tracer.start_span("cover", cones=len(cones), workers=workers)

    def cover_one(
        cone: Cone,
    ) -> tuple[ConeCover, CoverStats, Optional[ConeExplain]]:
        cone_stats = CoverStats()
        # Thread-confined like cone_stats; merged in cone order below.
        cone_explain = ConeExplain(cone.root) if options.explain else None
        faults.fire("cover.cone", options.deadline)
        if options.deadline is not None:
            # The cooperative per-cone checkpoint: a job past its budget
            # stops before starting another covering DP.
            options.deadline.check("cover.cone")
        cone_start = time.perf_counter()
        # Worker identity on the span: with workers > 1 this runs on a
        # pool thread, and ``repro obs top --by-worker`` attributes
        # covering time per worker from these attributes.
        with tracer.span(
            "cone",
            parent=cover_span,
            key=cone.root,
            size=cone.size,
            worker=threading.current_thread().name,
            thread=threading.get_ident(),
        ):
            cover = cover_cone(
                decomposed,
                cone,
                library,
                max_depth=options.max_depth,
                max_inputs=options.max_inputs,
                objective=options.objective,
                hazard_filter=hazard_filter,
                filter_mode=options.filter_mode,
                stats=cone_stats,
                dont_cares=dont_cares,
                tracer=tracer,
                explain=cone_explain,
            )
        cone_stats.cones = 1
        cone_stats.cone_seconds = time.perf_counter() - cone_start
        return cover, cone_stats, cone_explain

    try:
        if workers > 1 and len(cones) > 1:
            # Cones are independent and the hazard cache is thread-safe;
            # pool.map preserves cone order, so the merged result is
            # identical to the serial one.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(cover_one, cones))
        else:
            outcomes = [cover_one(cone) for cone in cones]
    finally:
        tracer.finish_span(cover_span)

    stats = CoverStats()
    covers: list[ConeCover] = []
    explain_log: Optional[ExplainLog] = None
    if options.explain:
        explain_log = ExplainLog(
            design=source.name,
            library=library.name,
            mode=mode,
            filter_mode=options.filter_mode,
            objective=options.objective,
            workers=workers,
        )
    for cover, cone_stats, cone_explain in outcomes:
        covers.append(cover)
        stats.merge(cone_stats)
        if explain_log is not None and cone_explain is not None:
            explain_log.add_cone(cone_explain)

    faults.fire("netlist.build", options.deadline)
    if options.deadline is not None:
        options.deadline.check("netlist.build")
    with tracer.span("build_netlist") as build_span:
        mapped = _build_mapped_netlist(source, decomposed, covers)
        build_span.set_attr(gates=len(mapped.nodes))
    result = MappingResult(
        mapped=mapped,
        source=source,
        library=library,
        mode=mode,
        area=mapped.total_area(),
        delay=mapped.critical_path_delay(),
        elapsed=0.0,
        stats=stats,
        covers=covers,
        workers=workers,
        metrics=metrics,
        explain=explain_log,
    )
    return result


def _finalize_metrics(result: MappingResult) -> None:
    """Publish the run's quality/runtime accounting into its registry."""
    registry = result.metrics
    registry.absorb_cover_stats(result.stats)
    registry.gauge("map.mode").set(result.mode)
    registry.gauge("map.area").set(result.area)
    registry.gauge("map.delay").set(result.delay)
    registry.gauge("map.cells").set(sum(result.cell_usage().values()))
    registry.gauge("map.cones").set(result.stats.cones)
    registry.gauge("map.workers").set(result.workers)
    registry.gauge("map.elapsed_seconds").set(result.elapsed)
    registry.gauge("map.annotate_seconds").set(result.annotate_elapsed)
    if result.explain is not None:
        result.explain.publish_metrics(registry)


def _build_mapped_netlist(
    source: Netlist, decomposed: Netlist, covers: list[ConeCover]
) -> Netlist:
    """Assemble the chosen selections into a mapped network.

    Cluster roots keep their decomposed-network names, so selections
    wire up across cone boundaries without renaming.
    """
    mapped = Netlist(source.name + ".mapped")
    for pi in decomposed.inputs:
        mapped.add_input(pi)
    for node in decomposed.nodes.values():
        if node.is_constant():
            from ..boolean.expr import Const

            assert isinstance(node.func, Const)
            mapped.add_constant(node.name, node.func.value)
    # Topologically safe insertion: gather all selections, then add in
    # dependency order (a selection's fanins are PIs or other roots).
    pending = {
        sel.cluster.root: sel for cover in covers for sel in cover.selections
    }
    placed: set[str] = set(mapped.inputs) | {
        n.name for n in mapped.nodes.values() if n.is_constant()
    }
    while pending:
        progress = False
        for root, sel in list(pending.items()):
            fanins = sel.match.fanin_names(list(sel.cluster.leaves))
            if all(f in placed for f in fanins):
                pin_map = dict(zip(sel.match.cell.pins, fanins))
                func = sel.match.cell.expression.rename(pin_map)
                mapped.add_gate(root, func, fanins, cell=sel.match.cell)
                placed.add(root)
                del pending[root]
                progress = True
        if not progress:
            raise RuntimeError("cyclic selection dependencies (internal error)")
    for out in decomposed.outputs:
        driver = decomposed.nodes[out].fanins[0]
        mapped.add_output(out, driver)
    return mapped
