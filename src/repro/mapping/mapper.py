"""The technology mappers: synchronous ``tmap`` and async ``async_tmap``.

Section 3's procedures, verbatim in structure::

    procedure tmap(network, library) {
        decomposed-network = tech-decomp(network);
        cones = partition(decomposed-network);
        foreach output in cones { find_best_cover(output, library); }
    }

    procedure async_tmap(network, library) {
        augment-library-with-hazard-info(library);
        decomposed-network = async_tech_decomp(network);
        cones = partition(decomposed-network);
        foreach output in cones { find-best-async-cover(output, library); }
    }

The two differ in (a) the decomposition (hazard-preserving vs.
simplifying), (b) library annotation, and (c) the hazardous-match
filter inside covering.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ..library import anncache
from ..library.library import AnnotationReport, Library
from ..network.decompose import async_tech_decomp, tech_decomp
from ..network.netlist import Netlist
from ..network.partition import Cone, partition
from .cover import ConeCover, CoverStats, cover_cone


@dataclass
class MappingOptions:
    """Mapper knobs; the paper runs everything at depth 5.

    ``input_bursts`` (a list of
    :class:`repro.mapping.dontcare.InputBurst`) switches on the
    hazard-don't-care extension of section 6: hazards no specified
    burst can excite are waived during matching.

    ``workers`` controls parallel cone covering: ``1`` (default) covers
    cones serially, ``0`` auto-sizes to the CPU count, and any other
    value is a thread-pool width.  Results are deterministic regardless
    of worker count — cones are independent given the shared hazard
    cache, and results are merged in cone order.

    ``annotation_cache_dir`` is forwarded to
    :meth:`repro.library.library.Library.annotate_hazards` so the
    one-time Table-2 annotation cost can be replayed from disk.  Pass
    :data:`repro.library.anncache.DISABLED` to bypass the cache even
    when the ``REPRO_ANNOTATION_CACHE`` environment toggle is set.
    """

    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    exhaustive_annotation: bool = True
    input_bursts: Optional[list] = None
    workers: int = 1
    annotation_cache_dir: anncache.CacheDir = None

    def resolved_workers(self) -> int:
        if self.workers == 0:
            return os.cpu_count() or 1
        return max(1, self.workers)


@dataclass
class MappingResult:
    """A mapped network plus quality/runtime accounting."""

    mapped: Netlist
    source: Netlist
    library: Library
    mode: str
    area: float
    delay: float
    elapsed: float
    annotate_elapsed: float = 0.0
    stats: CoverStats = field(default_factory=CoverStats)
    covers: list[ConeCover] = field(default_factory=list)
    annotation_report: Optional[AnnotationReport] = None
    workers: int = 1

    def cell_usage(self) -> dict[str, int]:
        return self.mapped.cell_usage()

    def summary(self) -> dict[str, float]:
        return {
            "area": self.area,
            "delay": round(self.delay, 2),
            "cells": float(sum(self.cell_usage().values())),
            "cpu": round(self.elapsed, 3),
        }


def tmap(
    network: Netlist,
    library: Library,
    options: Optional[MappingOptions] = None,
) -> MappingResult:
    """Synchronous technology mapping (the CERES-style baseline).

    Uses the simplifying decomposition and ignores hazards entirely —
    hence unsafe for fundamental-mode asynchronous designs (Figure 3).
    """
    options = options or MappingOptions()
    start = time.perf_counter()
    decomposed = tech_decomp(network)
    result = _map_decomposed(
        network, decomposed, library, options, hazard_filter=False, mode="sync"
    )
    result.elapsed = time.perf_counter() - start
    return result


def async_tmap(
    network: Netlist,
    library: Library,
    options: Optional[MappingOptions] = None,
) -> MappingResult:
    """Asynchronous technology mapping (the paper's contribution).

    Hazard-annotates the library (once), decomposes hazard-preservingly
    and screens hazardous-cell matches, so the mapped network has no
    logic hazard absent from the source (Theorem 3.2).
    """
    options = options or MappingOptions()
    start = time.perf_counter()
    annotate_elapsed = 0.0
    annotation_report = None
    if not library.annotated:
        annotation_report = library.annotate_hazards(
            exhaustive=options.exhaustive_annotation,
            cache_dir=options.annotation_cache_dir,
        )
        annotate_elapsed = annotation_report.elapsed
    decomposed = async_tech_decomp(network)
    result = _map_decomposed(
        network, decomposed, library, options, hazard_filter=True, mode="async"
    )
    result.elapsed = time.perf_counter() - start
    result.annotate_elapsed = annotate_elapsed
    result.annotation_report = annotation_report
    return result


def _map_decomposed(
    source: Netlist,
    decomposed: Netlist,
    library: Library,
    options: MappingOptions,
    hazard_filter: bool,
    mode: str,
) -> MappingResult:
    if hazard_filter and not library.annotated:
        library.annotate_hazards(
            exhaustive=options.exhaustive_annotation,
            cache_dir=options.annotation_cache_dir,
        )
    dont_cares = None
    if hazard_filter and options.input_bursts:
        from .dontcare import HazardDontCares

        dont_cares = HazardDontCares(decomposed, options.input_bursts)
    # Matching consults both indexes on every cluster; build them before
    # any covering (and before worker threads could race the lazy build).
    library.build_matching_indexes()
    cones = partition(decomposed)
    workers = options.resolved_workers()

    def cover_one(cone: Cone) -> tuple[ConeCover, CoverStats]:
        cone_stats = CoverStats()
        cone_start = time.perf_counter()
        cover = cover_cone(
            decomposed,
            cone,
            library,
            max_depth=options.max_depth,
            max_inputs=options.max_inputs,
            objective=options.objective,
            hazard_filter=hazard_filter,
            filter_mode=options.filter_mode,
            stats=cone_stats,
            dont_cares=dont_cares,
        )
        cone_stats.cones = 1
        cone_stats.cone_seconds = time.perf_counter() - cone_start
        return cover, cone_stats

    if workers > 1 and len(cones) > 1:
        # Cones are independent and the hazard cache is thread-safe;
        # pool.map preserves cone order, so the merged result is
        # identical to the serial one.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(cover_one, cones))
    else:
        outcomes = [cover_one(cone) for cone in cones]

    stats = CoverStats()
    covers: list[ConeCover] = []
    for cover, cone_stats in outcomes:
        covers.append(cover)
        stats.merge(cone_stats)

    mapped = _build_mapped_netlist(source, decomposed, covers)
    result = MappingResult(
        mapped=mapped,
        source=source,
        library=library,
        mode=mode,
        area=mapped.total_area(),
        delay=mapped.critical_path_delay(),
        elapsed=0.0,
        stats=stats,
        covers=covers,
        workers=workers,
    )
    return result


def _build_mapped_netlist(
    source: Netlist, decomposed: Netlist, covers: list[ConeCover]
) -> Netlist:
    """Assemble the chosen selections into a mapped network.

    Cluster roots keep their decomposed-network names, so selections
    wire up across cone boundaries without renaming.
    """
    mapped = Netlist(source.name + ".mapped")
    for pi in decomposed.inputs:
        mapped.add_input(pi)
    for node in decomposed.nodes.values():
        if node.is_constant():
            from ..boolean.expr import Const

            assert isinstance(node.func, Const)
            mapped.add_constant(node.name, node.func.value)
    # Topologically safe insertion: gather all selections, then add in
    # dependency order (a selection's fanins are PIs or other roots).
    pending = {
        sel.cluster.root: sel for cover in covers for sel in cover.selections
    }
    placed: set[str] = set(mapped.inputs) | {
        n.name for n in mapped.nodes.values() if n.is_constant()
    }
    while pending:
        progress = False
        for root, sel in list(pending.items()):
            fanins = sel.match.fanin_names(list(sel.cluster.leaves))
            if all(f in placed for f in fanins):
                pin_map = dict(zip(sel.match.cell.pins, fanins))
                func = sel.match.cell.expression.rename(pin_map)
                mapped.add_gate(root, func, fanins, cell=sel.match.cell)
                placed.add(root)
                del pending[root]
                progress = True
        if not progress:
            raise RuntimeError("cyclic selection dependencies (internal error)")
    for out in decomposed.outputs:
        driver = decomposed.nodes[out].fanins[0]
        mapped.add_output(out, driver)
    return mapped
