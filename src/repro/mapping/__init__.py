"""Technology mapping: cuts, Boolean matching, covering, the two mappers."""

from .cover import ConeCover, CoverStats, MappingError, Selection, cover_cone
from .dontcare import HazardDontCares, InputBurst, synthesis_bursts
from .reference import hand_style_reference
from .cuts import Cluster, cluster_expression, enumerate_clusters
from .match import Match, expression_truth_table, find_matches, match_cluster
from .mapper import MappingOptions, MappingResult, async_tmap, map_network, tmap
from .verify import VerificationReport, verify_mapping

__all__ = [
    "Cluster",
    "ConeCover",
    "CoverStats",
    "HazardDontCares",
    "InputBurst",
    "MappingError",
    "MappingOptions",
    "MappingResult",
    "Match",
    "Selection",
    "VerificationReport",
    "async_tmap",
    "cluster_expression",
    "cover_cone",
    "enumerate_clusters",
    "expression_truth_table",
    "hand_style_reference",
    "find_matches",
    "map_network",
    "match_cluster",
    "synthesis_bursts",
    "tmap",
    "verify_mapping",
]
