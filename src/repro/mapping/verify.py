"""Post-mapping verification: function and hazard preservation.

Theorem 3.2 promises the mapped network has a *subset* of the unmapped
network's logic hazards.  This module checks it:

* functional equivalence — BDD comparison of every output;
* exact hazard comparison — for small input counts, both networks are
  collapsed to their path-labelled structures and every transition is
  classified with the event-lattice oracle;
* sampled ternary comparison — for larger networks, random input bursts
  are screened with Eichelberger ternary simulation: any burst on which
  the mapped output may glitch while the source may not is a violation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..boolean.paths import label_expression
from ..hazards.oracle import all_transitions, classify_transition
from ..network.netlist import Netlist
from ..network.simulate import eichelberger


@dataclass
class VerificationReport:
    equivalent: bool
    hazard_safe: bool
    outputs_checked: int = 0
    transitions_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.equivalent and self.hazard_safe


def verify_mapping(
    source: Netlist,
    mapped: Netlist,
    exhaustive_limit: int = 8,
    samples: int = 200,
    seed: int = 0,
) -> VerificationReport:
    """Check a mapping preserves function and never adds logic hazards."""
    report = VerificationReport(equivalent=mapped.equivalent(source), hazard_safe=True)
    if not report.equivalent:
        report.violations.append("functional mismatch")
        return report

    num_inputs = len(source.inputs)
    if num_inputs <= exhaustive_limit:
        _exhaustive_check(source, mapped, report)
    else:
        _sampled_check(source, mapped, report, samples, seed)
    return report


def _exhaustive_check(
    source: Netlist, mapped: Netlist, report: VerificationReport
) -> None:
    order = sorted(source.inputs)
    for output in source.outputs:
        src_ls = label_expression(source.collapse(output), order)
        map_ls = label_expression(mapped.collapse(output), order)
        report.outputs_checked += 1
        for start, end in all_transitions(len(order)):
            report.transitions_checked += 1
            mapped_verdict = classify_transition(map_ls, start, end)
            if not mapped_verdict.logic_hazard:
                continue
            source_verdict = classify_transition(src_ls, start, end)
            if not source_verdict.logic_hazard:
                report.hazard_safe = False
                report.violations.append(
                    f"output {output}: new {mapped_verdict.kind.value} hazard "
                    f"for {start:0{len(order)}b} -> {end:0{len(order)}b}"
                )


def _sampled_check(
    source: Netlist,
    mapped: Netlist,
    report: VerificationReport,
    samples: int,
    seed: int,
) -> None:
    rng = random.Random(seed)
    inputs = list(source.inputs)
    for __ in range(samples):
        start = {name: bool(rng.getrandbits(1)) for name in inputs}
        end = dict(start)
        burst = rng.sample(inputs, rng.randint(1, max(1, len(inputs) // 2)))
        for name in burst:
            end[name] = not end[name]
        report.transitions_checked += 1
        src = eichelberger(source, start, end)
        dst = eichelberger(mapped, start, end)
        for output in source.outputs:
            # Ternary X is exact for static transitions; compare only
            # when the endpoints agree (a dynamic output goes X always).
            src_static = source.evaluate(start)[output] == source.evaluate(end)[output]
            if not src_static:
                continue
            if dst.went_unknown[output] and not src.went_unknown[output]:
                report.hazard_safe = False
                report.violations.append(
                    f"output {output}: mapped may glitch on sampled burst "
                    f"{sorted(burst)}"
                )
    report.outputs_checked = len(source.outputs)
