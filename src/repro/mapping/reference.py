"""A "hand-style" reference cover for Table 3's comparison.

The paper compares the asynchronous mapper's output against manual
mappings that were never published.  As a stand-in we use the mapping a
careful engineer produces quickly with simple cells: one library cell
per base gate (a depth-1 cover, no cluster optimization), which is how
the ABCS/SCSI controllers of the era were hand-translated before
complex-gate absorption.  The paper's claim — automatic mapping lands
within ~13 % of (there, below) hand quality — is evaluated against this
reference.
"""

from __future__ import annotations

from typing import Optional

from ..library.library import Library
from ..network.netlist import Netlist
from .mapper import MappingOptions, MappingResult, async_tmap


def hand_style_reference(
    network: Netlist,
    library: Library,
    options: Optional[MappingOptions] = None,
) -> MappingResult:
    """Gate-per-gate asynchronous mapping (depth bound 1)."""
    base = options or MappingOptions()
    reference_options = MappingOptions(
        max_depth=1,
        max_inputs=base.max_inputs,
        objective=base.objective,
        filter_mode=base.filter_mode,
        exhaustive_annotation=base.exhaustive_annotation,
    )
    result = async_tmap(network, library, reference_options)
    result.mode = "hand-style"
    return result
