"""Boolean matching of cluster functions against library cells.

CERES matches with Boolean techniques rather than structural pattern
matching: a cluster matches a cell iff their functions are equal under
an input-pin permutation.  Truth tables with permutation-invariant
signature pruning decide this cheaply at cell sizes.

A match's *pin binding* also transports the cell's hazard annotation
into cluster variable space, which is what the asynchronous filter of
section 3.2.2 compares against the subnetwork being replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..boolean import truthtable as tt
from ..boolean.expr import Expr
from ..library.cell import LibraryCell
from ..library.library import Library


@dataclass(frozen=True)
class Match:
    """A library cell matching a cluster function.

    ``binding[i]`` is the index (into the cluster's leaf list) of the
    signal driving cell pin ``i``.
    """

    cell: LibraryCell
    binding: tuple[int, ...]

    def fanin_names(self, leaves: Sequence[str]) -> list[str]:
        return [leaves[self.binding[i]] for i in range(len(self.binding))]


def expression_truth_table(expr: Expr, order: Sequence[str]) -> int:
    """Dense truth table of an expression over an explicit ordering."""
    table = 0
    names = list(order)
    for point in range(1 << len(names)):
        env = {name: bool(point >> i & 1) for i, name in enumerate(names)}
        if expr.evaluate(env):
            table |= 1 << point
    return table


def find_matches(
    library: Library,
    table: int,
    num_inputs: int,
    limit_per_cell: Optional[int] = 1,
) -> Iterator[Match]:
    """Yield matches of a cluster truth table against the library.

    Only cells with the same pin count and permutation-invariant
    signature are tried (constant and degenerate cluster functions never
    match a well-formed cell).  ``limit_per_cell`` bounds how many
    distinct bindings to produce per cell — one suffices for hazard-free
    cells, while the async filter may want alternatives for hazardous
    ones.
    """
    mask = tt.table_mask(num_inputs)
    table &= mask
    if table == 0 or table == mask:
        return
    for cell in library.candidates(table, num_inputs):
        count = 0
        for perm in tt.match_permutations(
            table, cell.truth_table(), num_inputs, limit=limit_per_cell
        ):
            yield Match(cell, perm)
            count += 1
            if limit_per_cell is not None and count >= limit_per_cell:
                break


def match_cluster(
    library: Library,
    expr: Expr,
    leaves: Sequence[str],
    limit_per_cell: Optional[int] = 1,
) -> list[Match]:
    """All cell matches for a cluster given by expression + leaf order."""
    if len(leaves) > tt.TT_MAX_VARS:
        return []
    table = expression_truth_table(expr, leaves)
    # Degenerate clusters (function ignores a leaf) rarely match a cell
    # of that pin count and would bind a floating pin; skip them.
    for i in range(len(leaves)):
        if not tt.depends_on(table, i, len(leaves)):
            return []
    return list(find_matches(library, table, len(leaves), limit_per_cell))
