"""Cluster (cut) enumeration over decomposed cones.

CERES-style Boolean matching considers, for every gate of a cone, the
single-output subnetworks ("clusters") rooted there, bounded by a
maximum depth and a maximum number of cluster inputs.  The paper runs
all experiments with a depth bound of 5 (Tables 3–5).

Cones are fanout-free trees of base gates, so cluster enumeration is
the classical recursive cut enumeration on a tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..network.netlist import Netlist
from ..network.partition import Cone


@dataclass(frozen=True)
class Cluster:
    """A candidate match region.

    ``root`` is the cluster output node; ``leaves`` the ordered input
    signals; ``members`` the gate nodes replaced when the cluster is
    chosen; ``depth`` the gate depth between leaves and root.
    """

    root: str
    leaves: tuple[str, ...]
    members: frozenset[str]
    depth: int

    @property
    def num_inputs(self) -> int:
        return len(self.leaves)


def enumerate_clusters(
    netlist: Netlist,
    cone: Cone,
    max_depth: int = 5,
    max_inputs: int = 8,
    max_clusters_per_node: Optional[int] = 4000,
) -> dict[str, list[Cluster]]:
    """All clusters rooted at each cone member, bounded by depth/inputs.

    Returns a map node → clusters.  The trivial cluster (the node's own
    base gate with its fanins as leaves) is always present, so a cover
    exists whenever the library can realize the base functions.
    """
    members = set(cone.members)
    leaves = set(cone.leaves)
    clusters: dict[str, list[Cluster]] = {}

    def node_clusters(name: str) -> list[Cluster]:
        if name in clusters:
            return clusters[name]
        node = netlist.nodes[name]
        result: list[Cluster] = []
        # Choice per fanin: stop (leaf) or absorb the fanin's clusters.
        options: list[list[Optional[Cluster]]] = []
        for fanin in node.fanins:
            opts: list[Optional[Cluster]] = [None]  # None = cut here
            if fanin in members and fanin not in leaves:
                opts.extend(node_clusters(fanin))
            options.append(opts)

        def combine(index: int, leaf_acc: list[str], member_acc: set[str], depth_acc: int) -> None:
            if max_clusters_per_node is not None and len(result) >= max_clusters_per_node:
                return
            if index == len(options):
                ordered = tuple(dict.fromkeys(leaf_acc))
                if len(ordered) <= max_inputs:
                    result.append(
                        Cluster(
                            root=name,
                            leaves=ordered,
                            members=frozenset(member_acc),
                            depth=depth_acc + 1,
                        )
                    )
                return
            fanin = node.fanins[index]
            for option in options[index]:
                if option is None:
                    if len(set(leaf_acc) | {fanin}) > max_inputs:
                        continue
                    combine(index + 1, leaf_acc + [fanin], member_acc, depth_acc)
                else:
                    if option.depth + 1 > max_depth:
                        continue
                    merged = set(leaf_acc) | set(option.leaves)
                    if len(merged) > max_inputs:
                        continue
                    combine(
                        index + 1,
                        leaf_acc + list(option.leaves),
                        member_acc | set(option.members),
                        max(depth_acc, option.depth),
                    )

        combine(0, [], {name}, 0)
        clusters[name] = result
        return result

    for member in cone.members:
        node_clusters(member)
    return clusters


def cluster_expression(netlist: Netlist, cluster: Cluster):
    """The cluster's structural expression over its leaf names.

    Pure substitution of the member gates' functions — the expression
    mirrors the subnetwork being replaced, which is what both matching
    (function) and the async filter (structure) need.
    """
    return netlist.collapse(cluster.root, stop_at=set(cluster.leaves))


def iter_all_clusters(
    clusters: dict[str, list[Cluster]]
) -> Iterator[Cluster]:
    for group in clusters.values():
        yield from group
