"""Minimum-cost covering of cones (matching + covering, section 3.1.3).

Dynamic programming over each fanout-free cone: for every gate, the
best realization is the cheapest (cluster, cell) pair rooted there plus
the best realizations of the cluster's internal leaves.  The
asynchronous variant differs in exactly one place — the matching filter
of section 3.2.2: a *hazardous* cell is accepted only if its hazards
(transported through the pin binding) are a subset of the hazards of
the subnetwork it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hazards.analyzer import HazardAnalysis, find_subset_violation
from ..hazards.cache import HazardCache, global_cache
from ..library.library import Library
from ..network.netlist import Netlist
from ..network.partition import Cone
from ..obs.explain import (
    ACCEPTED,
    REJECTED_COST,
    REJECTED_HAZARD,
    WAIVED_DONT_CARE,
    violation_reason,
)
from ..obs.tracer import NULL_TRACER
from .cuts import Cluster, cluster_expression, enumerate_clusters
from .match import Match, match_cluster


class MappingError(Exception):
    """Raised when a cone cannot be covered with the given library."""


@dataclass
class CoverStats:
    """Bookkeeping for the runtime analysis of Tables 2 and 4.

    Beyond match/filter counts this carries the performance-layer
    telemetry: hazard-cache hit/miss counters (cluster analyses and
    filter verdicts), total filter invocations, and per-cone wall time
    (``cones`` / ``cone_seconds``; ``cone_seconds`` sums per-cone work,
    so with parallel covering it exceeds wall-clock).

    ``CoverStats`` is the thread-confined per-cone accumulator and the
    backward-compatible view; the canonical run-level sink is a
    :class:`repro.obs.metrics.MetricsRegistry` (``MappingResult.metrics``)
    populated from the merged stats via :meth:`to_registry`.  The work
    counters (everything but the timing field and the hit/miss *split*)
    are deterministic for a given design/library and identical for any
    worker count; the cache hit/miss split can shift between workers
    when two threads race the same cold key, but each hit+miss *sum* is
    stable (asserted in ``tests/mapping/test_stats_merge.py``).
    """

    clusters: int = 0
    matches: int = 0
    hazardous_matches: int = 0
    hazard_rejections: int = 0
    hazard_accepts: int = 0
    dc_waivers: int = 0
    filter_invocations: int = 0
    analysis_cache_hits: int = 0
    analysis_cache_misses: int = 0
    subset_cache_hits: int = 0
    subset_cache_misses: int = 0
    cones: int = 0
    cone_seconds: float = 0.0

    #: Integer work/cache counters, i.e. every field except the timing
    #: sum ``cone_seconds``.  ``merge``, the registry bridges, and the
    #: parallel-aggregation tests all iterate this one tuple so a new
    #: counter cannot be silently left out of any of them.
    COUNTER_FIELDS = (
        "clusters",
        "matches",
        "hazardous_matches",
        "hazard_rejections",
        "hazard_accepts",
        "dc_waivers",
        "filter_invocations",
        "analysis_cache_hits",
        "analysis_cache_misses",
        "subset_cache_hits",
        "subset_cache_misses",
        "cones",
    )

    def merge(self, other: "CoverStats") -> None:
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.cone_seconds += other.cone_seconds

    @property
    def cache_hits(self) -> int:
        return self.analysis_cache_hits + self.subset_cache_hits

    @property
    def cache_misses(self) -> int:
        return self.analysis_cache_misses + self.subset_cache_misses

    # -- metrics-registry bridge ----------------------------------------
    def to_registry(self, registry, prefix: str = "cover.") -> None:
        """Publish these counters into a metrics registry (the canonical
        run-level sink); equivalent to ``registry.absorb_cover_stats``."""
        registry.absorb_cover_stats(self, prefix=prefix)

    @classmethod
    def from_registry(cls, registry, prefix: str = "cover.") -> "CoverStats":
        """Reconstruct a stats view from ``cover.*`` registry counters.

        The thin backward-compatibility window onto the registry: a
        round trip through :meth:`to_registry` preserves every field.
        """
        stats = cls()
        for name in cls.COUNTER_FIELDS:
            metric = registry.get(prefix + name)
            if metric is not None:
                setattr(stats, name, int(metric.value))
        metric = registry.get(prefix + "cone_seconds")
        if metric is not None:
            stats.cone_seconds = float(metric.value)
        return stats


@dataclass
class Selection:
    """One chosen replacement: a cluster realized by a matched cell."""

    cluster: Cluster
    match: Match
    cost: float


@dataclass
class ConeCover:
    """The chosen selections realizing one cone, root-first."""

    cone: Cone
    selections: list[Selection] = field(default_factory=list)

    @property
    def area(self) -> float:
        return sum(s.match.cell.area for s in self.selections)


def cover_cone(
    netlist: Netlist,
    cone: Cone,
    library: Library,
    max_depth: int = 5,
    max_inputs: int = 8,
    objective: str = "area",
    hazard_filter: bool = False,
    filter_mode: str = "exact",
    stats: Optional[CoverStats] = None,
    dont_cares=None,
    cache: Optional[HazardCache] = None,
    tracer=None,
    explain=None,
) -> ConeCover:
    """Find the best hazard-aware cover of one cone.

    With ``hazard_filter`` (the async mapper) every hazardous-cell match
    is screened with :func:`repro.hazards.analyzer.hazards_subset`
    before it may join the cover.  Hazard-free cells pass unscreened —
    by Corollary 3.1 they can only remove hazards.  When ``dont_cares``
    (a :class:`repro.mapping.dontcare.HazardDontCares`) is supplied, a
    rejected hazardous cell gets a second chance: hazards no specified
    burst can excite are waived (paper section 6's extension).

    Cluster analyses and filter verdicts go through ``cache`` (the
    process-wide :func:`repro.hazards.cache.global_cache` by default) so
    repeated structures — within a cone, across cones, and across whole
    mapping runs — hit warm results; hits/misses land in ``stats``.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) records the two
    phases of the cone — cluster enumeration (section 3.1.3's candidate
    generation) and the match/filter/cover DP — as child spans of
    whatever span the caller has open; span granularity stays per-cone,
    never per-match, so disabled tracing costs two no-op ``with``
    blocks.

    ``explain`` (a :class:`repro.obs.explain.ConeExplain`) records every
    (cluster, cell) candidate with its outcome and, for hazard
    rejections, the offending hazard plus a concrete replayable witness
    (via :func:`repro.hazards.analyzer.find_subset_violation`).  The
    recorder is thread-confined like ``stats``; with ``explain=None``
    (the default) the hot path pays one ``is None`` check per match.
    """
    if stats is None:
        stats = CoverStats()
    if cache is None:
        cache = global_cache()
    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("enumerate_clusters") as enum_span:
        clusters = enumerate_clusters(netlist, cone, max_depth, max_inputs)
        enum_span.set_attr(
            nodes=len(clusters),
            clusters=sum(len(v) for v in clusters.values()),
        )

    # Per-cone memo: repeated hazardous matches on one cluster reuse the
    # analysis without rebuilding the expression or re-querying the
    # shared cache (hit/miss counters fire once per distinct cluster).
    analysis_memo: dict[tuple[str, tuple[str, ...]], HazardAnalysis] = {}

    def cluster_analysis(cluster: Cluster, expr) -> HazardAnalysis:
        key = (cluster.root, cluster.leaves)
        analysis = analysis_memo.get(key)
        if analysis is not None:
            return analysis
        analysis, hit = cache.expression_analysis(expr, cluster.leaves)
        if hit:
            stats.analysis_cache_hits += 1
        else:
            stats.analysis_cache_misses += 1
        analysis_memo[key] = analysis
        return analysis

    best: dict[str, tuple[float, Optional[Selection]]] = {
        leaf: (0.0, None) for leaf in cone.leaves
    }
    champion_records: dict[str, object] = {}

    def best_cost(name: str) -> float:
        if name in best:
            return best[name][0]
        node_clusters = clusters.get(name, [])
        stats.clusters += len(node_clusters)
        champion: Optional[Selection] = None
        champion_cost = float("inf")
        champion_record = None
        for cluster in node_clusters:
            expr = cluster_expression(netlist, cluster)
            matches = match_cluster(library, expr, cluster.leaves)
            for match in matches:
                stats.matches += 1
                record = (
                    explain.candidate(name, cluster, match)
                    if explain is not None
                    else None
                )
                if hazard_filter and match.cell.is_hazardous:
                    stats.hazardous_matches += 1
                    analysis = cluster_analysis(cluster, expr)
                    assert match.cell.analysis is not None
                    stats.filter_invocations += 1
                    accepted, hit = cache.hazards_subset(
                        match.cell.analysis,
                        analysis,
                        mapping=list(match.binding),
                        mode=filter_mode,
                    )
                    if hit:
                        stats.subset_cache_hits += 1
                    else:
                        stats.subset_cache_misses += 1
                    waived = False
                    if not accepted and dont_cares is not None:
                        accepted = _accept_with_dont_cares(
                            dont_cares, match, cluster, analysis, stats, cache
                        )
                        waived = accepted
                    if record is not None:
                        record.hazardous = True
                        record.screened = True
                        record.waived = waived
                    if not accepted:
                        stats.hazard_rejections += 1
                        if record is not None:
                            _record_rejection(
                                record, match, analysis, filter_mode
                            )
                        continue
                    stats.hazard_accepts += 1
                leaf_cost = sum(best_cost(leaf) for leaf in cluster.leaves)
                if objective == "delay":
                    own = match.cell.delay + max(
                        (best_cost(leaf) for leaf in cluster.leaves), default=0.0
                    )
                    total = own
                else:
                    total = match.cell.area + leaf_cost
                if record is not None:
                    record.cost = total
                if total < champion_cost:
                    champion_cost = total
                    champion = Selection(cluster, match, total)
                    if record is not None:
                        if champion_record is not None:
                            champion_record.outcome = REJECTED_COST
                        record.outcome = (
                            WAIVED_DONT_CARE if record.waived else ACCEPTED
                        )
                        champion_record = record
        if champion is None:
            raise MappingError(
                f"no library match covers node {name!r} "
                f"(library {library.name!r}; is the base-gate set present?)"
            )
        best[name] = (champion_cost, champion)
        if champion_record is not None:
            champion_records[name] = champion_record
        return champion_cost

    # ``objective == "delay"`` reuses best_cost as best-arrival.
    with tracer.span("match_cover") as match_span:
        best_cost(cone.root)

        # Reconstruct the chosen selections from the root down.
        cover = ConeCover(cone)
        frontier = [cone.root]
        visited: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in visited or name in cone.leaves:
                continue
            visited.add(name)
            selection = best[name][1]
            if selection is None:
                continue
            cover.selections.append(selection)
            chosen = champion_records.get(name)
            if chosen is not None:
                chosen.selected = True
            frontier.extend(selection.cluster.leaves)
        match_span.set_attr(
            matches=stats.matches,
            filter_invocations=stats.filter_invocations,
            selections=len(cover.selections),
        )
    return cover


def _record_rejection(record, match, analysis, filter_mode: str) -> None:
    """Attach the offending hazard + witness to a rejected candidate.

    Runs only on actual rejections with explain enabled, so it can
    afford the uncached :func:`find_subset_violation` walk — a pure
    function of (cell, cluster, binding), hence identical for any worker
    count or cache state.
    """
    record.outcome = REJECTED_HAZARD
    violation = find_subset_violation(
        match.cell.analysis,
        analysis,
        mapping=list(match.binding),
        mode=filter_mode,
    )
    if violation is not None:
        record.reason = violation_reason(violation, analysis.names)


def _accept_with_dont_cares(
    dont_cares, match, cluster, analysis, stats, cache: Optional[HazardCache] = None
) -> bool:
    """Second-chance screening under hazard don't-cares (section 6).

    The cell's exhaustive hazardous-transition list is filtered down to
    transitions some specified burst can excite; each surviving one must
    still be matched by the subnetwork.  Cells too large for exhaustive
    verdicts are not eligible (no sound waiver basis).
    """
    from .dontcare import waive_irrelevant_hazards

    if cache is None:
        cache = global_cache()
    assert match.cell.analysis is not None
    verdicts = match.cell.analysis.ensure_verdicts()
    if verdicts is None:
        return False
    relevant, waived = waive_irrelevant_hazards(
        dont_cares,
        list(cluster.leaves),
        verdicts,
        list(match.binding),
        match.cell.analysis.nvars,
    )
    if waived == 0:
        return False  # nothing waived: the plain filter already said no
    for start, end in relevant:
        if not cache.transition_has_hazard(analysis.lsop, start, end):
            return False
    stats.dc_waivers += waived
    return True
