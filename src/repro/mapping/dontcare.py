"""Hazard don't-care information during mapping (paper section 6).

The paper's conclusions name this as future work: "the use of *hazard
don't care* information during technology mapping as a means to improve
the quality of the mapped circuit."  The generalized fundamental-mode
assumption only requires hazard-freedom for the machine's *specified*
input bursts; a hazardous cell whose extra hazards can never be excited
by any specified burst is perfectly safe to use — and is often smaller.

Implementation: each specified primary-input burst is simulated to its
two stable endpoints; for every cluster the values its leaf signals
take at those endpoints span a *relevant transition space* per burst.
A cell hazard whose transition lies inside no relevant space is
unreachable in fundamental-mode operation and may be waived.

The endpoint projection is conservative in one direction only — it can
declare a hazard relevant that a finer analysis might waive — except
for one approximation: mid-burst the leaf signals may briefly wander
outside the projected space while the network settles.  Mapped results
should therefore be (and in this package are) re-verified by replaying
every specified burst on the mapped network, which is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..boolean.cube import Cube
from ..network.netlist import Netlist


@dataclass(frozen=True)
class InputBurst:
    """One specified primary-input transition: two full assignments."""

    start: Mapping[str, bool]
    end: Mapping[str, bool]


class HazardDontCares:
    """Relevant-transition oracle for a decomposed network.

    Built once per mapping run: simulates every specified burst's stable
    endpoints through the decomposed network, recording each node's
    value pair.  ``relevant`` then answers whether a cluster-level
    transition can be excited by any specified burst.
    """

    def __init__(self, netlist: Netlist, bursts: Sequence[InputBurst]) -> None:
        self.netlist = netlist
        self._endpoint_values: list[tuple[dict[str, bool], dict[str, bool]]] = []
        for burst in bursts:
            values_start = netlist.evaluate(burst.start)
            values_end = netlist.evaluate(burst.end)
            self._endpoint_values.append((values_start, values_end))

    @classmethod
    def from_synthesis(cls, netlist: Netlist, synthesis) -> "HazardDontCares":
        """Derive the burst list from a burst-mode synthesis result."""
        return cls(netlist, synthesis_bursts(synthesis))

    def leaf_spaces(self, leaves: Sequence[str]) -> list[Cube]:
        """Per burst: the cube of leaf-variable values it can span."""
        spaces = []
        nvars = len(leaves)
        for values_start, values_end in self._endpoint_values:
            used = 0
            phase = 0
            for i, leaf in enumerate(leaves):
                v_start = values_start[leaf]
                v_end = values_end[leaf]
                if v_start == v_end:
                    used |= 1 << i
                    if v_start:
                        phase |= 1 << i
            spaces.append(Cube(used, phase, nvars))
        return spaces

    def relevant(
        self, leaves: Sequence[str], start_point: int, end_point: int
    ) -> bool:
        """Can any specified burst excite this cluster transition?

        True iff the transition space T[start, end] over the cluster
        leaves fits inside some burst's leaf space.
        """
        nvars = len(leaves)
        space = Cube.minterm(start_point, nvars).supercube(
            Cube.minterm(end_point, nvars)
        )
        return any(ls.contains(space) for ls in self.leaf_spaces(leaves))


def synthesis_bursts(synthesis) -> list[InputBurst]:
    """The deduplicated specified input bursts of a synthesis result.

    Each specified transition of each equation contributes one
    primary-input burst over (inputs + state lines).
    """
    seen: set[tuple[int, int]] = set()
    bursts: list[InputBurst] = []
    variables = synthesis.variables
    for transitions in synthesis.transitions.values():
        for spec in transitions:
            key = (spec.start, spec.end)
            if key in seen:
                continue
            seen.add(key)
            start = {
                name: bool(spec.start >> i & 1)
                for i, name in enumerate(variables)
            }
            end = {
                name: bool(spec.end >> i & 1) for i, name in enumerate(variables)
            }
            bursts.append(InputBurst(start, end))
    return bursts


def waive_irrelevant_hazards(
    dont_cares: Optional[HazardDontCares],
    leaves: Sequence[str],
    cell_verdicts,
    mapping: Sequence[int],
    cell_nvars: int,
):
    """Filter a cell's hazardous transitions down to the relevant ones.

    ``cell_verdicts`` is the cell's exhaustive hazardous-transition
    list; the returned subset maps each through the pin binding and
    keeps only those some specified burst can excite.  With no
    don't-care information everything is relevant.
    """
    if dont_cares is None:
        return [(v.start, v.end) for v in cell_verdicts], 0
    kept = []
    waived = 0
    for verdict in cell_verdicts:
        start = _map_point(verdict.start, mapping, cell_nvars)
        end = _map_point(verdict.end, mapping, cell_nvars)
        if dont_cares.relevant(leaves, start, end):
            kept.append((start, end))
        else:
            waived += 1
    return kept, waived


def _map_point(point: int, mapping: Sequence[int], old_nvars: int) -> int:
    result = 0
    for i in range(old_nvars):
        if point >> i & 1:
            result |= 1 << mapping[i]
    return result
