"""Ablation — the asynchronous matching filter (section 3.2.2).

Quantifies the filter per library: how often hazardous cells match, how
often they are rejected, and what the screening costs — the mechanism
behind Table 4's runtime overhead ("very dependent upon the number of
hazardous elements present in the library").  Also compares the exact
filter with the paper's record-list filter.
"""

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.reporting import render_table

from .conftest import emit

DESIGN = "abcs"
LIBRARIES = ["ACTEL", "LSI", "CMOS3", "GDT"]

#: Table 1's hazardous fractions, which should order the filter load.
HAZARDOUS_FRACTION = {"ACTEL": 24 / 84, "LSI": 12 / 86, "CMOS3": 1 / 30, "GDT": 0.0}


def test_ablation_hazard_filter(annotated_libraries, benchmark):
    net = synthesize_benchmark(DESIGN).netlist(DESIGN)
    rows = []
    screens = {}
    for library_name in LIBRARIES:
        library = annotated_libraries[library_name]
        exact = async_tmap(net, library, MappingOptions(filter_mode="exact"))
        paper = async_tmap(net, library, MappingOptions(filter_mode="paper"))
        screens[library_name] = exact.stats.hazardous_matches
        rows.append(
            (
                library_name,
                f"{HAZARDOUS_FRACTION[library_name]:.0%}",
                exact.stats.matches,
                exact.stats.hazardous_matches,
                exact.stats.hazard_rejections,
                exact.stats.hazard_accepts,
                f"{exact.elapsed:.2f}",
                f"{paper.elapsed:.2f}",
            )
        )
    emit(
        "ablation_hazard_filter",
        render_table(
            [
                "Library",
                "Hazardous cells",
                "Matches",
                "Screened",
                "Rejected",
                "Accepted",
                "Exact (s)",
                "Paper (s)",
            ],
            rows,
            title=f"Ablation — matching-filter activity on {DESIGN}",
        ),
    )

    # Screening load follows the hazardous fraction of the library.
    assert screens["ACTEL"] >= screens["LSI"] >= screens["GDT"]
    assert screens["GDT"] == 0

    library = annotated_libraries["ACTEL"]
    benchmark.pedantic(
        lambda: async_tmap(net, library, MappingOptions()),
        rounds=1,
        iterations=1,
    )
