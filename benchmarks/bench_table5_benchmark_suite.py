"""Table 5 — mapping results for the asynchronous benchmark suite.

Paper (depth 5, DEC 5000/240): CPU / delay / area of the asynchronous
mapper on eleven controllers for the LSI and CMOS3 libraries.  Absolute
values are testbed-bound (our controllers are synthetic size-matched
stand-ins; see DESIGN.md); the reproduction targets are:

* area ordering — dean-ctrl ≫ scsi > oscsi-ctrl ≈ abcs > pe-send-ifc >
  the dme/chu/vanbek cluster;
* LSI areas sit an order of magnitude above CMOS3 (different units);
* LSI delays sit well above CMOS3 delays (slower technology);
* every mapped network is functionally equivalent to its source.
"""

from repro.burstmode.benchmarks import TABLE5_ORDER, synthesize_benchmark
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.reporting import render_table

from .conftest import emit


def test_table5_benchmark_suite(annotated_libraries, benchmark):
    options = MappingOptions(max_depth=5)
    rows = []
    areas = {"LSI": {}, "CMOS3": {}}
    delays = {"LSI": {}, "CMOS3": {}}
    for name in TABLE5_ORDER:
        net = synthesize_benchmark(name).netlist(name)
        row = [name]
        for library_name in ("LSI", "CMOS3"):
            library = annotated_libraries[library_name]
            result = async_tmap(net, library, options)
            assert result.mapped.equivalent(net), (name, library_name)
            areas[library_name][name] = result.area
            delays[library_name][name] = result.delay
            row += [
                f"{result.elapsed:.1f}s",
                f"{result.delay:.1f}ns",
                f"{result.area:.0f}",
            ]
        rows.append(row)

    emit(
        "table5",
        render_table(
            ["Design", "LSI CPU", "LSI Delay", "LSI Area",
             "CMOS3 CPU", "CMOS3 Delay", "CMOS3 Area"],
            rows,
            title="Table 5 — async mapper on the benchmark suite (depth 5)",
        ),
    )

    for library_name in ("LSI", "CMOS3"):
        a = areas[library_name]
        assert a["dean-ctrl"] == max(a.values()), library_name
        assert a["dean-ctrl"] > a["scsi"] > a["oscsi-ctrl"], library_name
        assert a["oscsi-ctrl"] > a["pe-send-ifc"], library_name
        for small in ("chu-ad-opt", "vanbek-opt", "dme", "dme-opt"):
            assert a[small] < a["pe-send-ifc"], (library_name, small)

    # Cross-library shapes.
    for name in TABLE5_ORDER:
        assert areas["LSI"][name] > 5 * areas["CMOS3"][name], name
        assert delays["LSI"][name] > 2 * delays["CMOS3"][name], name

    library = annotated_libraries["CMOS3"]
    net = synthesize_benchmark("dme").netlist("dme")
    benchmark(lambda: async_tmap(net, library, options))
