#!/usr/bin/env python
"""CI smoke for the conformance subsystem: fuzz, certify, reject.

Runs, against the CMOS3 library:

* ``--iterations`` seeded fuzz cases (half clean, half hazardized) —
  every expectation failure is shrunk and written as a reproducer;
* catalog spot-checks: a handful of Table-5 designs are mapped and
  must certify with zero rejections;
* a seeded-hazard rejection check: ``repro.testing.faults.seed_hazard``
  plants a Theorem-3.2 violation in a real mapped netlist, and the
  certifier must reject it with a glitching, replayed counterexample.

On any failure the shrunk reproducer (``repro-corpus/v1``) is written
to ``--reproducer`` for CI artifact upload, and the exit code is 1.

Usage::

    PYTHONPATH=src python benchmarks/conformance_smoke.py \
        [--iterations 12] [--seed 0] [--reproducer conformance_repro.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.burstmode.benchmarks import synthesize_benchmark  # noqa: E402
from repro.conformance import certify_mapping  # noqa: E402
from repro.conformance.fuzz import (  # noqa: E402
    fuzz,
    write_corpus_entry,
)
from repro.library import anncache  # noqa: E402
from repro.library.standard import load_library  # noqa: E402
from repro.mapping.mapper import MappingOptions, map_network  # noqa: E402
from repro.testing.faults import seed_hazard  # noqa: E402

SPOT_CHECKS = ("chu-ad-opt", "vanbek-opt", "dme-fast", "pe-send-ifc")
DEPTH = 3


def _fail(message: str) -> None:
    print(f"conformance smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--library", default="CMOS3")
    parser.add_argument("--reproducer", default="conformance_repro.json")
    args = parser.parse_args(argv)

    library = load_library(args.library)
    library.annotate_hazards()

    # 1. Seeded fuzz: clean cases must certify, hazardized must reject.
    for hazardize in (False, True):
        label = "hazardized" if hazardize else "clean"
        report = fuzz(
            args.iterations,
            seed=args.seed,
            library=args.library,
            hazardize=hazardize,
            log=lambda line: print(f"  {line}"),
        )
        print(
            f"fuzz[{label}]: {report.iterations} case(s), "
            f"{report.certified} certified, {report.rejected} rejected, "
            f"{report.seeded} seeded, {report.elapsed:.2f}s"
        )
        if report.failures:
            minimal, certificate = report.failures[0]
            write_corpus_entry(args.reproducer, minimal)
            print(f"shrunk reproducer written to {args.reproducer}")
            _fail(
                f"{len(report.failures)} fuzz expectation failure(s); "
                f"first: {minimal.name} -> {certificate.verdict} "
                f"{certificate.violations[:2]}"
            )
        if hazardize and report.seeded == 0:
            _fail("hazardize pass seeded nothing — harness is toothless")

    # 2. Catalog spot-checks: real mappings must certify.
    for name in SPOT_CHECKS:
        source = synthesize_benchmark(name).netlist(name)
        options = MappingOptions(
            max_depth=DEPTH, annotation_cache_dir=anncache.DISABLED
        )
        mapped = map_network(source, library, options).mapped
        certificate = certify_mapping(source, mapped, library)
        print(
            f"certify[{name}]: {certificate.verdict} "
            f"({certificate.transitions_checked} transitions, "
            f"{certificate.elapsed:.2f}s)"
        )
        if not certificate.certified:
            _fail(f"{name} rejected: {certificate.violations[:3]}")

    # 3. A planted hazard in a real netlist must be caught.
    source = synthesize_benchmark("chu-ad-opt").netlist("chu-ad-opt")
    options = MappingOptions(
        max_depth=DEPTH, annotation_cache_dir=anncache.DISABLED
    )
    mapped = map_network(source, library, options).mapped
    seeded = seed_hazard(mapped, reference=source, seed=args.seed)
    if seeded is None:
        _fail("seed_hazard found nothing seedable in chu-ad-opt")
    certificate = certify_mapping(source, seeded.netlist, library)
    print(f"seeded-hazard check: {seeded.describe()} -> {certificate.verdict}")
    if certificate.certified:
        _fail("certifier accepted a netlist with a planted hazard")
    refutations = [
        cx for cx in certificate.counterexamples if not cx.source_hazard
    ]
    if not refutations or not refutations[0].replay.get("glitched"):
        _fail("rejection lacks a glitching replayed counterexample")

    print("conformance smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
