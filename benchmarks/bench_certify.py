"""Cost of independent certification relative to mapping itself.

The conformance certifier re-proves equivalence and hazard containment
from scratch (BDD + truth table + event-lattice oracle per transition),
so it is allowed to cost real time — but it must stay *deployable* as a
batch post-pass.  Budget, asserted per benchmark: certification wall
time <= max(2x the mapping wall time, an absolute floor) — the floor
absorbs timer noise on designs that map in a millisecond.

The run is recorded as a ``repro-bench-mapping/v1`` snapshot at
``benchmarks/results/BENCH_certify.json`` so certify cost is tracked
alongside the mapping numbers.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_certify.py -s
"""

from __future__ import annotations

import time

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.conformance import certify_mapping
from repro.hazards.cache import clear_global_cache
from repro.library import anncache
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.obs.export import BENCH_SCHEMA, write_bench_snapshot
from repro.reporting import render_table

from .conftest import RESULTS_DIR, emit

#: Mid-sized slice spanning exhaustive (small-support) and sampled
#: (8-variable support) certifier paths.
WORKLOAD = ("chu-ad-opt", "vanbek-opt", "dme-fast", "pe-send-ifc")
DEPTH = 3
#: Certify may cost up to this multiple of the map wall time ...
RELATIVE_BUDGET = 2.0
#: ... or this many seconds outright, whichever is larger.  The floor
#: covers designs that map in milliseconds but certify with tens of
#: thousands of oracle calls (dme-fast: ~0.9s on the reference box),
#: with headroom for slower shared CI hardware.
ABSOLUTE_FLOOR = 3.0


def test_certify_cost_within_budget(annotated_libraries):
    library = annotated_libraries["CMOS3"]
    rows = []
    snapshot_rows: dict[str, dict] = {}
    violations = []
    for name in WORKLOAD:
        network = synthesize_benchmark(name).netlist(name)
        clear_global_cache()
        options = MappingOptions(
            max_depth=DEPTH, annotation_cache_dir=anncache.DISABLED
        )
        map_start = time.perf_counter()
        result = async_tmap(network, library, options)
        map_seconds = time.perf_counter() - map_start

        certify_start = time.perf_counter()
        certificate = certify_mapping(network, result.mapped, library)
        certify_seconds = time.perf_counter() - certify_start

        budget = max(RELATIVE_BUDGET * map_seconds, ABSOLUTE_FLOOR)
        within = certify_seconds <= budget
        if not within:
            violations.append(
                f"{name}: certify {certify_seconds:.2f}s > "
                f"budget {budget:.2f}s (map {map_seconds:.2f}s)"
            )
        assert certificate.certified, certificate.violations
        rows.append(
            (
                name,
                f"{map_seconds:.3f}s",
                f"{certify_seconds:.3f}s",
                f"{certify_seconds / max(map_seconds, 1e-9):.1f}x",
                certificate.transitions_checked,
                "ok" if within else "OVER",
            )
        )
        snapshot_rows[name] = {
            "area": result.area,
            "cells": len(list(result.mapped.gates())),
            "map_seconds": round(map_seconds, 4),
            "certify_seconds": round(certify_seconds, 4),
            "certify_transitions": certificate.transitions_checked,
            "certify_verdict": certificate.verdict,
            "cache": {"hit_rate": 0.0},
        }

    emit(
        "bench_certify",
        render_table(
            ["Benchmark", "Map", "Certify", "Ratio", "Transitions", "Budget"],
            rows,
            title=(
                "Certification cost (budget: max("
                f"{RELATIVE_BUDGET:.0f}x map, {ABSOLUTE_FLOOR:.0f}s))"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_snapshot(
        RESULTS_DIR / "BENCH_certify.json",
        {
            "schema": BENCH_SCHEMA,
            "library": library.name,
            "workers": 1,
            "max_depth": DEPTH,
            "annotate_seconds": 0.0,
            "annotate_source": "session-warm",
            "benchmarks": snapshot_rows,
        },
    )
    assert not violations, "; ".join(violations)
