#!/usr/bin/env python
"""CI smoke for end-to-end correlated observability.

Two phases, both against real subprocesses:

1. **Stitched batch** — ``python -m repro batch --backend processes
   --trace --log``: asserts the run produced ONE ``repro-trace/v1``
   tree (single trace_id, every span closed and contained by its
   parent, unique span ids, each ``batch_job`` span carrying the
   process-pool worker's grafted ``async_tmap`` subtree) and that every
   ``repro-log/v1`` line validates and carries the run's trace_id.
2. **Traced daemon** — boots ``python -m repro serve --backend
   processes --log``, sends one traced map (``X-Repro-Trace``), grafts
   the response into the client's tracer and validates the
   client→daemon→worker tree shares one trace_id; scrapes
   ``/metrics?format=prometheus`` and parses the exposition; after
   SIGTERM, validates the daemon's access log and finds the traced
   request's line.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import MapRequest  # noqa: E402
from repro.obs.export import parse_prometheus_text  # noqa: E402
from repro.obs.log import read_log  # noqa: E402
from repro.obs.tracer import Tracer  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DESIGNS = ("chu-ad-opt", "vanbek-opt")
LIBRARY = "CMOS3"


def _fail(message: str) -> None:
    print(f"obs smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _expect(label: str, condition: bool) -> None:
    if not condition:
        _fail(label)


def _walk_spans(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk_spans(child)


def _validate_tree(payload: dict) -> dict:
    """Manual well-formedness walk of an exported repro-trace/v1 file."""
    _expect("trace schema", payload.get("schema") == "repro-trace/v1")
    _expect("trace carries a trace_id", bool(payload.get("trace_id")))
    seen_ids: set = set()
    for root in payload["spans"]:
        for span in _walk_spans(root):
            _expect(f"span {span['name']} closed", span["end"] is not None)
            _expect(
                f"span {span['name']} id unique",
                span["span_id"] not in seen_ids,
            )
            seen_ids.add(span["span_id"])
            for child in span.get("children", ()):
                _expect(
                    f"{child['name']} within {span['name']}",
                    child["start"] >= span["start"] - 1e-6
                    and child["end"] <= span["end"] + 1e-6,
                )
    return payload


def phase_stitched_batch(workdir: Path) -> None:
    trace_path = workdir / "batch_trace.json"
    log_path = workdir / "batch_log.jsonl"
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "batch", *DESIGNS,
            "--libraries", LIBRARY,
            "--backend", "processes", "--workers", "2",
            "--depth", "3", "--no-cache",
            "--trace", str(trace_path),
            "--log", str(log_path),
        ],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={**__import__("os").environ,
             "PYTHONPATH": str(REPO_ROOT / "src")},
        timeout=600,
    )
    if result.returncode != 0:
        _fail(f"batch exited {result.returncode}:\n{result.stderr}")

    payload = _validate_tree(json.loads(trace_path.read_text()))
    trace_id = payload["trace_id"]
    roots = payload["spans"]
    _expect("one root span", len(roots) == 1)
    _expect("root is the batch span", roots[0]["name"] == "batch")
    batch_jobs = [c for c in roots[0]["children"] if c["name"] == "batch_job"]
    _expect("one batch_job per job", len(batch_jobs) == len(DESIGNS))
    for job_span in batch_jobs:
        names = {c["name"] for c in job_span["children"]}
        _expect(
            f"worker subtree grafted under {job_span['attrs'].get('job')}",
            "async_tmap" in names,
        )

    lines = read_log(log_path)  # validates every line or raises
    _expect("log is non-empty", bool(lines))
    events = {line["event"] for line in lines}
    for expected in ("map.done", "job.ok", "batch.done"):
        _expect(f"log contains {expected}", expected in events)
    for line in lines:
        _expect(
            f"log line {line['event']} carries the run trace_id",
            line["trace_id"] == trace_id,
        )
    for line in lines:
        if line["event"] == "job.ok":
            _expect("job.ok carries a job_id", line["job_id"] is not None)
            _expect("job.ok carries a span_id", line["span_id"] is not None)
    print(
        f"  stitched batch: {len(list(_walk_spans(roots[0])))} spans under "
        f"one trace ({trace_id}), {len(lines)} valid log lines"
    )


def phase_traced_daemon(workdir: Path) -> None:
    daemon_log = workdir / "daemon_log.jsonl"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--no-cache",
            "--backend", "processes", "--workers", "2",
            "--preload", LIBRARY,
            "--log", str(daemon_log),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ,
             "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        banner = process.stdout.readline().strip()
        if not banner.startswith("serving on http://"):
            _fail(f"bad startup banner: {banner!r}")
        client = ServiceClient(banner.split()[-1])
        client.wait_ready(timeout=20)

        # One traced request: client -> daemon -> pool worker.
        tracer = Tracer()
        root = tracer.start_span("map.client", design=DESIGNS[0])
        client.trace_context = tracer.context(root)
        response = client.map(
            MapRequest(design=DESIGNS[0], library=LIBRARY, max_depth=3)
        )
        tracer.finish_span(root)
        client.trace_context = None
        _expect("traced response carries a trace", response.trace is not None)
        _expect(
            "constant trace_id across the wire",
            response.trace["trace_id"] == tracer.trace_id,
        )
        tracer.graft(response.trace, parent=root)
        problems = tracer.validate()
        _expect(f"stitched request tree validates: {problems}", not problems)
        names = {span.name for span in tracer.all_spans()}
        for expected in ("map.client", "service.request", "async_tmap"):
            _expect(f"stitched tree contains {expected}", expected in names)

        text = client.metrics_prometheus()
        parsed = parse_prometheus_text(text)
        _expect(
            "exposition counts the request",
            parsed["samples"].get("service_requests_total", 0) >= 1,
        )
        _expect(
            "per-endpoint latency histogram exposed",
            'service_request_latency_map_bucket{le="+Inf"}'
            in parsed["samples"],
        )

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        _expect(f"daemon exit status {code}", code == 0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    lines = read_log(daemon_log)  # validates every line or raises
    access = [line for line in lines if line["event"] == "request"]
    _expect("daemon wrote access-log events", bool(access))
    traced = [line for line in access if line["trace_id"] == tracer.trace_id]
    _expect("access log records the traced request", len(traced) >= 1)
    _expect(
        "traced access line carries the request span id",
        traced[0]["span_id"] is not None,
    )
    _expect(
        "traced access line carries status/latency/queue depth",
        traced[0]["fields"]["status"] == 200
        and traced[0]["fields"]["seconds"] > 0
        and "queue_depth" in traced[0]["fields"],
    )
    print(
        f"  traced daemon: one stitched request tree "
        f"({tracer.trace_id}), {len(parsed['samples'])} prometheus "
        f"samples, {len(lines)} valid daemon log lines"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args(argv)
    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="obs_smoke_")
    )
    workdir.mkdir(parents=True, exist_ok=True)

    phase_stitched_batch(workdir)
    phase_traced_daemon(workdir)
    print("obs smoke passed: stitched batch trace + traced daemon + "
          "prometheus exposition + validated logs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
