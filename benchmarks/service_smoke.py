#!/usr/bin/env python
"""CI smoke for the serving daemon: boot, mixed traffic, counted drain.

Boots ``python -m repro serve`` as a real subprocess, drives a mixed
request workload (map / map+verify / explain / verify) through the
client, and asserts:

* every response is well-formed and verifies;
* the ``/metrics`` counters match the request mix exactly;
* the warm service annotated its library exactly once
  (``library.annotate.calls == 1`` across all mapping traffic);
* SIGTERM drains cleanly (exit 0) and the shutdown trace/metrics
  artifacts are valid JSON documents (uploaded by CI on failure).

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py \
        [--trace service_trace.json] [--metrics service_metrics.json]
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import (  # noqa: E402
    ExplainRequest,
    MapRequest,
    VerifyRequest,
)
from repro.service.client import ServiceClient  # noqa: E402


def _fail(message: str) -> None:
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _expect(label: str, actual, expected) -> None:
    if actual != expected:
        _fail(f"{label}: expected {expected!r}, got {actual!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="service_trace.json")
    parser.add_argument("--metrics", default="service_metrics.json")
    parser.add_argument("--library", default="CMOS3")
    args = parser.parse_args(argv)

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--no-cache",
            "--preload", args.library,
            "--trace", args.trace,
            "--metrics-file", args.metrics,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        banner = process.stdout.readline().strip()
        if not banner.startswith("serving on http://"):
            _fail(f"bad startup banner: {banner!r}")
        client = ServiceClient(banner.split()[-1])
        client.wait_ready(timeout=15)

        # Mixed workload: 3 maps (one verified), 1 explain, 1 verify.
        plain = client.map(MapRequest(design="dme", library=args.library))
        warm = client.map(MapRequest(design="dme", library=args.library))
        checked = client.map(
            MapRequest(design="vanbek-opt", library=args.library, verify=True)
        )
        explained = client.explain(
            ExplainRequest(design="chu-ad-opt", library=args.library)
        )
        verdict = client.verify(
            VerifyRequest(design="dme", mapped_blif=plain.blif)
        )

        _expect("map status", plain.status, "ok")
        _expect("warm blif identity", warm.blif, plain.blif)
        _expect("warm annotation work", warm.annotate_seconds, 0.0)
        if checked.verify is None or not checked.verify["ok"]:
            _fail(f"verified map failed: {checked.verify!r}")
        if not explained.rendered:
            _fail("explain response rendered no report lines")
        if not verdict.ok:
            _fail(f"verify endpoint verdict: {verdict!r}")

        metrics = client.metrics()["metrics"]

        def counter(name: str) -> int:
            return metrics.get(name, {}).get("value", 0)

        _expect("service.requests", counter("service.requests"), 5)
        _expect("service.requests.map", counter("service.requests.map"), 3)
        _expect(
            "service.requests.explain", counter("service.requests.explain"), 1
        )
        _expect(
            "service.requests.verify", counter("service.requests.verify"), 1
        )
        _expect("service.errors", counter("service.errors"), 0)
        _expect(
            "library.annotate.calls (preload only)",
            counter("library.annotate.calls"),
            1,
        )

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        _expect("daemon exit status", code, 0)

        import json

        for path, schema in (
            (args.trace, "repro-trace/v1"),
            (args.metrics, "repro-metrics/v1"),
        ):
            document = json.loads(Path(path).read_text())
            _expect(f"{path} schema", document.get("schema"), schema)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    print(
        "service smoke passed: 5 requests (3 map / 1 explain / 1 verify), "
        "counters exact, 1 annotation, clean drain"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
