"""Figures 2–10 — the paper's worked hazard examples, regenerated.

Each check reconstructs a figure's circuit (exactly where the text
pins it down, representatively where only the structure is described)
and re-derives the figure's claim with the section-4 algorithms,
printing a gallery summary.
"""

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression
from repro.hazards.dynamic import exhibits_mic_dynamic, find_mic_dyn_haz_2level
from repro.hazards.multilevel import find_mic_dyn_haz_multilevel
from repro.hazards.oracle import classify_transition
from repro.hazards.sic import find_sic_dynamic_hazards
from repro.hazards.static0 import find_static0_hazards
from repro.hazards.static1 import exhibits_static1, find_static1_hazards
from repro.hazards.transition import dynamic_fhf, transition_space
from repro.mapping.mapper import async_tmap, tmap
from repro.mapping.verify import verify_mapping
from repro.network.netlist import Netlist
from repro.reporting import render_table

from .conftest import emit

W = ["w", "x", "y", "z"]
GALLERY: list[tuple[str, str]] = []


def record(figure: str, claim: str) -> None:
    GALLERY.append((figure, claim))


def test_figure2a_sic_static1(benchmark):
    # A 1-1 transition not held by any single gate glitches; adding the
    # bridging AND gate removes it.
    cover = Cover.from_strings(["w'x", "wz"], W)
    transition = Cube.from_string("xz", W)  # spans w'xyz -> wxyz
    assert cover.contains_cube(transition)
    assert exhibits_static1(cover, transition)
    fixed = cover.with_cube(Cube.from_string("xz", W))
    assert not exhibits_static1(fixed, transition)
    record("2a", "uncovered 1-1 transition glitches; bridging gate fixes it")
    benchmark(lambda: exhibits_static1(cover, transition))


def test_figure2b_mic_static1(benchmark):
    cover = Cover.from_strings(["w'x'", "y'z", "w'y", "xz"], W)
    hazards = find_static1_hazards(cover)
    assert hazards, "the four-cube example carries m.i.c. static-1 hazards"
    record("2b", f"m.i.c. static-1 hazards found: {len(hazards)}")
    benchmark(lambda: find_static1_hazards(cover))


def test_figure2c_dynamic(benchmark):
    cover = Cover.from_strings(["w'x", "xy", "wz"], W)
    hazards = find_mic_dyn_haz_2level(cover)
    assert hazards
    record("2c", "a gate can pulse during a dynamic burst (Thm 4.1)")
    benchmark(lambda: find_mic_dyn_haz_2level(cover))


def test_figure3_boolean_match_loses_redundant_cube(mini_library, benchmark):
    net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
    sync_report = verify_mapping(net, tmap(net, mini_library).mapped)
    async_report = verify_mapping(net, async_tmap(net, mini_library).mapped)
    assert sync_report.equivalent and not sync_report.hazard_safe
    assert async_report.ok
    record("3", "sync Boolean match drops the consensus cube; async keeps it")
    benchmark.pedantic(lambda: async_tmap(net, mini_library), rounds=1, iterations=1)


def test_figure4_structures_differ(benchmark):
    sop = label_expression(parse("w*y + x*y"))
    factored = label_expression(parse("(w + x)*y"))
    assert find_mic_dyn_haz_multilevel(sop)
    assert not find_mic_dyn_haz_multilevel(factored)
    record("4", "same function, two BFF structures, different dynamic hazards")
    benchmark(lambda: find_mic_dyn_haz_multilevel(factored))


def test_figure5_conflicts_bitvector(benchmark):
    cover = Cover.from_strings(["w'x", "xy", "wz"], W)
    c1, c2, c3 = cover.cubes
    assert c1.conflicts(c3) == 0b0001 and c1.is_adjacent(c3)
    adjacency = c1.consensus(c3)
    assert adjacency is not None and adjacency.to_string(W) == "xz"
    assert not cover.single_cube_contains(adjacency)
    hazards = find_static1_hazards(cover)
    assert any(h.transition == adjacency for h in hazards)
    record("5", "CONFLICTS bit-vector finds the uncovered adjacency xz")
    benchmark(lambda: c1.conflicts(c3))


def test_figure6_static0_and_sic(benchmark):
    lsop = label_expression(parse("(w + x' + y')*(x*y + y'*z)"))
    static0 = find_static0_hazards(lsop)
    sic = find_sic_dynamic_hazards(lsop)
    assert any(h.var == lsop.index["x"] for h in static0)
    assert any(h.var == lsop.index["y"] for h in sic)
    record("6", "reconvergent paths: static-0 on x, s.i.c. dynamic on y")
    benchmark(lambda: find_static0_hazards(lsop))


def test_figure7_function_vs_logic_paths(benchmark):
    # Within one transition space, some change orders are clean, some
    # excite a logic hazard, and some a function hazard.
    cover = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
    lsop = label_cover(cover, W)
    alpha, beta = 0b1100, 0b0110  # y,z high -> x,y high
    assert dynamic_fhf(cover, alpha, beta)
    verdict = classify_transition(lsop, alpha, beta)
    assert verdict.logic_hazard
    record("7", "a transition space mixes clean, logic- and function-hazard paths")
    benchmark(lambda: classify_transition(lsop, alpha, beta))


def test_figure8_transition_spaces(benchmark):
    cover = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
    alpha, gamma = 0b1100, 0b0110
    beta, delta = 0b0011, 0b1110
    assert exhibits_mic_dynamic(cover, alpha, gamma)
    space = transition_space(beta, delta, 4)
    assert all(
        cube.contains_point(delta) for cube in cover if cube.intersects(space)
    )
    record("8", "T[alpha,gamma] hazardous; T[beta,delta] safe (condition 2)")
    benchmark(lambda: exhibits_mic_dynamic(cover, alpha, gamma))


def test_figure9_dynamic_from_static1(benchmark):
    cover = Cover.from_strings(["wxy", "w'xz"], W)
    static1 = find_static1_hazards(cover)
    assert any(h.transition.to_string(W) == "xyz" for h in static1)
    # the dynamic procedure intentionally does not re-report it
    dynamic = find_mic_dyn_haz_2level(cover)
    assert not dynamic
    record("9", "m.i.c. dynamic shadow of a static-1 hazard: characterized once")
    benchmark(lambda: find_static1_hazards(cover))


def test_figure10_procedure_walkthrough(benchmark):
    cover = Cover.from_strings(["w'xy", "w'xz", "xyz"], W)
    from repro.hazards.dynamic import cube_intersections

    inters = cube_intersections(cover)
    assert {c.to_string(W) for c in inters} == {"w'xyz"}
    inter = inters[0]
    alpha = [p for v in [0, 1, 2, 3] if inter.used >> v & 1
             for p in [next(iter(inter.flip_var(v).minterms()))]
             if not cover.evaluate(p)]
    beta = [p for v in [0, 1, 2, 3] if inter.used >> v & 1
            for p in [next(iter(inter.flip_var(v).minterms()))]
            if cover.evaluate(p)]
    assert len(alpha) == 1 and len(beta) == 3  # Example 4.2.4's sets
    hazards = find_mic_dyn_haz_2level(cover)
    assert len(hazards) == 3
    record("10", "alpha_c x beta_c = 1 x 3 minimal FHF spaces, all hazardous")
    benchmark(lambda: find_mic_dyn_haz_2level(cover))


def test_zz_emit_gallery(benchmark):
    # Runs last (alphabetical): print the accumulated gallery.
    assert len(GALLERY) >= 10
    emit(
        "figures",
        render_table(
            ["Figure", "Reproduced claim"],
            GALLERY,
            title="Figures 2-10 — hazard example gallery",
        ),
    )
    cover = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
    benchmark(lambda: find_mic_dyn_haz_2level(cover))
