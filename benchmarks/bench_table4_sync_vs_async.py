"""Table 4 — run times of the synchronous vs asynchronous mappers.

Paper (SCSI and ABCS across Actel/LSI/CMOS3/GDT, depth 5): the
asynchronous mapper took roughly 1.5–1.6× the synchronous one, with the
overhead "very dependent upon the number of hazardous elements present
in the library".

Reproduction targets: async ≥ sync on every cell of the table, and the
hazard-filter activity (matches screened) highest on Actel, whose
hazardous fraction (29 %) dominates the other libraries.
"""

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.mapping.mapper import MappingOptions, async_tmap, tmap
from repro.reporting import render_table

from .conftest import emit

LIBRARIES = ["ACTEL", "LSI", "CMOS3", "GDT"]
DESIGNS = ["scsi", "abcs"]


def test_table4_sync_vs_async(annotated_libraries, benchmark):
    options = MappingOptions(max_depth=5)
    rows = []
    screened = {}
    ratios = []
    for design in DESIGNS:
        net = synthesize_benchmark(design).netlist(design)
        sync_times = []
        async_times = []
        for library_name in LIBRARIES:
            library = annotated_libraries[library_name]
            sync_result = tmap(net, library, options)
            async_result = async_tmap(net, library, options)
            sync_times.append(sync_result.elapsed)
            async_times.append(async_result.elapsed)
            screened[(design, library_name)] = (
                async_result.stats.hazardous_matches
            )
            ratios.append(async_result.elapsed / max(sync_result.elapsed, 1e-9))
        rows.append(
            [design.upper(), "Synchronous"]
            + [f"{t:.2f}" for t in sync_times]
        )
        rows.append(
            [design.upper(), "Asynchronous"]
            + [f"{t:.2f}" for t in async_times]
        )

    emit(
        "table4",
        render_table(
            ["Design", "Mapper"] + LIBRARIES,
            rows,
            title="Table 4 — sync vs async mapper run times in seconds (depth 5)",
        ),
    )

    # Shape: overhead concentrated where hazardous matches occur.
    for design in DESIGNS:
        actel = screened[(design, "ACTEL")]
        for other in ("LSI", "CMOS3", "GDT"):
            assert actel >= screened[(design, other)], (design, other)
    # The async mapper is never dramatically cheaper than sync.
    assert sum(ratios) / len(ratios) > 0.8

    library = annotated_libraries["CMOS3"]
    net = synthesize_benchmark("abcs").netlist("abcs")
    benchmark.pedantic(
        lambda: async_tmap(net, library, options), rounds=1, iterations=1
    )
