"""Table 2 — hazard analysis run times for library initialization.

Paper (DEC 5000)::

    LSI    sync .6s   async  1.2s   (86 elements)
    Actel  sync .6s   async  1.1s   (94 elements)
    CMOS3  sync .2s   async   .4s   (28 elements)
    GDT    sync .6s   async 16.7s   (72 elements)

Absolute seconds are machine-bound; the reproduction targets are the
*shapes*: async init costs a small multiple of sync init for ordinary
libraries, and GDT — whose complex wide AOI cells dominate hazard
analysis — is an order of magnitude slower than the rest.
"""

import time

from repro.library.standard import actel_act1, cmos3, gdt, lsi9k
from repro.reporting import render_table

from .conftest import emit

BUILDERS = {"LSI": lsi9k, "Actel": actel_act1, "CMOS3": cmos3, "GDT": gdt}


def fresh(builder):
    """Bypass the lru_cache: Table 2 measures cold initialization."""
    return builder.__wrapped__()


def sync_init(builder):
    """Synchronous library read: cells, truth tables, matching indexes —
    everything the synchronous mapper needs, but no hazard analysis."""
    library = fresh(builder)
    for cell in library.cells:
        cell.truth_table()
    library.candidates(0, 0)  # force the signature-index build
    return library


def async_init(builder):
    """Asynchronous library read: sync work + hazard annotation."""
    library = sync_init(builder)
    library.annotate_hazards(exhaustive=True)
    return library


def test_table2_library_initialization(benchmark):
    rows = []
    measured = {}
    for name, builder in BUILDERS.items():
        t0 = time.perf_counter()
        sync_init(builder)
        sync_elapsed = time.perf_counter() - t0
        t0 = time.perf_counter()
        library = async_init(builder)
        async_elapsed = time.perf_counter() - t0
        measured[name] = (sync_elapsed, async_elapsed)
        rows.append(
            (
                name,
                f"{sync_elapsed:.2f} s",
                f"{async_elapsed:.2f} s",
                len(library),
                f"{async_elapsed / max(sync_elapsed, 1e-9):.0f}x",
            )
        )

    emit(
        "table2",
        render_table(
            ["Library", "Sync", "Async", "# Elements", "Async/Sync"],
            rows,
            title="Table 2 — hazard-analysis run times for library initialization",
        ),
    )

    # Shape assertions.
    for name in BUILDERS:
        sync_elapsed, async_elapsed = measured[name]
        assert async_elapsed > sync_elapsed, name
    # GDT dominates every other async init by a wide margin.
    gdt_async = measured["GDT"][1]
    for other in ("LSI", "Actel", "CMOS3"):
        assert gdt_async > 3.0 * measured[other][1], other

    # Registered measurement: annotate the smallest library.
    benchmark(lambda: async_init(cmos3))


def test_table2_disk_cache_warm_vs_cold(tmp_path):
    """The annotation cache converts Table-2's async overhead into a
    one-time cost: a second load of the same library replays per-cell
    analyses from disk instead of re-running hazard analysis."""
    cold_lib = fresh(cmos3)
    cold = cold_lib.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
    assert cold.source == "cold"
    assert cold.cache_path is not None

    warm_lib = fresh(cmos3)
    warm = warm_lib.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
    assert warm.source == "disk"
    assert warm.elapsed <= cold.elapsed
    # The payload's cold timing is snapshotted just before the store, so
    # it sits within the cold report's total.
    assert warm.cold_elapsed is not None
    assert 0.0 < warm.cold_elapsed <= cold.elapsed

    emit(
        "table2-cache",
        render_table(
            ["Library", "Cold annotate", "Warm (disk)", "Speedup"],
            [
                (
                    "CMOS3",
                    f"{cold.elapsed:.3f} s",
                    f"{warm.elapsed:.3f} s",
                    f"{cold.elapsed / max(warm.elapsed, 1e-9):.0f}x",
                )
            ],
            title="Table 2 addendum — annotation cache, cold vs warm",
        ),
    )
