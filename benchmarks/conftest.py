"""Shared infrastructure for the paper-reproduction benchmark harness.

Each ``bench_table*`` module regenerates one table (or figure gallery)
of the paper.  Tables are printed to stdout (run with ``-s`` to see
them live) and appended to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def annotated_libraries():
    """The four synthetic libraries, hazard-annotated once per session."""
    from repro.library import actel_act1, cmos3, gdt, lsi9k

    libraries = {}
    for build in (lsi9k, cmos3, gdt, actel_act1):
        library = build()
        if not library.annotated:
            library.annotate_hazards()
        libraries[library.name] = library
    return libraries


@pytest.fixture(scope="session")
def mini_library():
    from repro.library import minimal_teaching_library

    library = minimal_teaching_library()
    if not library.annotated:
        library.annotate_hazards()
    return library
