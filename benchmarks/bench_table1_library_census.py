"""Table 1 — libraries and their hazardous elements.

Paper's rows::

    LSI9K   Muxes            12 / 86   14%
    CMOS3   Muxes             1 / 30    3%
    GDT     None              0 / 72    0%
    Actel   AOIs,OAIs,Muxes  24 / 84   29%

The census is pure structure analysis, so the reproduction target is
*exact* equality of counts and hazardous families.
"""

import pytest

from repro.hazards.analyzer import analyze_expression
from repro.reporting import render_table

from .conftest import emit

PAPER_ROWS = {
    "LSI": ("Muxes", 12, 86, 14),
    "CMOS3": ("Muxes", 1, 30, 3),
    "GDT": ("None", 0, 72, 0),
    "ACTEL": ("AOIs,OAIs,Muxes", 24, 84, 29),
}

FAMILY_LABEL = {
    frozenset(): "None",
    frozenset({"mux"}): "Muxes",
    frozenset({"mux", "aoi", "oai"}): "AOIs,OAIs,Muxes",
}


def test_table1_census(annotated_libraries, benchmark):
    rows = []
    for name in ("LSI", "CMOS3", "GDT", "ACTEL"):
        library = annotated_libraries[name]
        census = library.census()
        label = FAMILY_LABEL.get(
            frozenset(census["hazardous_families"]),
            ",".join(census["hazardous_families"]),
        )
        rows.append(
            (
                name,
                label,
                census["hazardous"],
                census["total"],
                f"{census['percent']}%",
            )
        )
        paper_label, paper_hazardous, paper_total, paper_percent = PAPER_ROWS[name]
        assert census["hazardous"] == paper_hazardous, name
        assert census["total"] == paper_total, name
        assert census["percent"] == paper_percent, name
        assert label == paper_label, name

    emit(
        "table1",
        render_table(
            ["Library", "Hazardous Elements", "#", "Total", "% Hazardous"],
            rows,
            title="Table 1 — libraries and their hazardous elements",
        ),
    )

    # Benchmark the unit of work behind the census: hazard analysis of
    # one representative hazardous cell.
    mux = annotated_libraries["LSI"].cell("MUX21_1X")
    benchmark(lambda: analyze_expression(mux.expression, mux.pins))
