"""Table 3 — automatically-mapped vs hand-mapped designs (depth 5).

Paper::

    SCSI / LSI:  async tmap area 168 (no hand-mapped number published)
    ABCS / GDT:  hand-mapped 312, async tmap 272  → auto ≈ 13% smaller

The original hand mappings were never published; our reference is a
careful gate-per-gate manual translation (see
``repro.mapping.reference``).  The reproduction target is the *claim*:
the asynchronous mapper matches or beats the hand-style cover, with
the margin in the tens of percent, while remaining hazard-safe.
Areas are pulldown-transistor counts, as in the paper.
"""

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.mapping.reference import hand_style_reference
from repro.reporting import render_table

from .conftest import emit

DESIGNS = [("scsi", "LSI"), ("abcs", "GDT")]


def test_table3_hand_vs_auto(annotated_libraries, benchmark):
    options = MappingOptions(max_depth=5)
    rows = []
    ratios = {}
    for design, library_name in DESIGNS:
        library = annotated_libraries[library_name]
        net = synthesize_benchmark(design).netlist(design)
        hand = hand_style_reference(net, library, options)
        auto = async_tmap(net, library, options)
        ratios[design] = auto.area / hand.area
        rows.append(
            (design.upper(), library_name, "hand-style", f"{hand.area:.0f}",
             f"{hand.elapsed:.1f}")
        )
        rows.append(
            (design.upper(), library_name, "async tmap", f"{auto.area:.0f}",
             f"{auto.elapsed:.1f}")
        )

    emit(
        "table3",
        render_table(
            ["Design", "Library", "How Mapped", "Cost (area)", "Time (s)"],
            rows,
            title="Table 3 — automatically-mapped vs hand-style designs (depth 5)",
        ),
    )

    # Shape: auto within (well under) the hand-style area; the paper
    # reports auto ≈ 13% *smaller* than hand on ABCS.
    for design, ratio in ratios.items():
        assert ratio <= 1.0, (design, ratio)

    design, library_name = DESIGNS[1]
    library = annotated_libraries[library_name]
    net = synthesize_benchmark(design).netlist(design)
    benchmark.pedantic(
        lambda: async_tmap(net, library, options), rounds=1, iterations=1
    )
