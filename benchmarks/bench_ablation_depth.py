"""Ablation — cluster depth bound (the paper fixes depth = 5).

Sweeps the covering depth bound and reports area/runtime, showing why
the paper settles on 5: area improves sharply up to moderate depths and
saturates, while runtime keeps growing.
"""

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.reporting import render_table

from .conftest import emit

DEPTHS = [1, 2, 3, 5, 7]
DESIGN = "pe-send-ifc"


def test_ablation_depth(annotated_libraries, benchmark):
    library = annotated_libraries["CMOS3"]
    net = synthesize_benchmark(DESIGN).netlist(DESIGN)
    rows = []
    areas = {}
    for depth in DEPTHS:
        result = async_tmap(net, library, MappingOptions(max_depth=depth))
        assert result.mapped.equivalent(net)
        areas[depth] = result.area
        rows.append(
            (
                depth,
                f"{result.area:.0f}",
                f"{result.delay:.2f}",
                sum(result.cell_usage().values()),
                f"{result.elapsed:.2f}",
            )
        )
    emit(
        "ablation_depth",
        render_table(
            ["Depth bound", "Area", "Delay (ns)", "Cells", "CPU (s)"],
            rows,
            title=f"Ablation — depth bound sweep on {DESIGN} / CMOS3",
        ),
    )
    # Monotone improvement up to the paper's operating point.
    assert areas[5] <= areas[2] <= areas[1]
    # Diminishing returns past depth 5 (the paper's choice).
    assert areas[7] >= 0.9 * areas[5]

    benchmark.pedantic(
        lambda: async_tmap(net, library, MappingOptions(max_depth=5)),
        rounds=1,
        iterations=1,
    )
