#!/usr/bin/env python
"""Warm-vs-cold serving benchmark: the daemon must amortize annotation.

Boots an in-process ``repro.service`` instance, maps each smoke
benchmark once cold and several times warm, and proves the serving
claim end to end:

* the *first* request pays library hazard annotation (Table 2) and the
  matching-index build; every later request runs only the per-request
  phases (decompose, match+filter, cover) — verified against the
  ``library.annotate.calls`` counter, which must stay at exactly 1 no
  matter how many requests are served;
* every response — cold or warm — is **byte-identical** to a cold
  one-shot ``map_network`` run of the same request (same BLIF text,
  same SHA-256 digest);
* warm responses report ``annotate_seconds == 0`` and no annotation
  source.

The warm responses are also folded into a ``repro-bench-mapping/v1``
snapshot (quality fields from the wire payloads) so CI can hold served
results to the committed baseline via ``check_regression.py --subset``::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --output serving_bench.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline BENCH_mapping.json --fresh serving_bench.json \
        --subset --tolerance 2.0 --min-seconds 1.0
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import MapRequest, netlist_blif  # noqa: E402
from repro.api.facade import clear_library_cache  # noqa: E402
from repro.library import anncache, standard  # noqa: E402
from repro.mapping.mapper import MappingOptions, map_network  # noqa: E402
from repro.obs.export import BENCH_SCHEMA, write_bench_snapshot  # noqa: E402
from repro.obs.perf import SMOKE_BENCHMARKS  # noqa: E402
from repro.reporting import render_table  # noqa: E402
from repro.service import MappingService, ServiceConfig  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def _fail(message: str) -> None:
    print(f"serving benchmark FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(SMOKE_BENCHMARKS)
    )
    parser.add_argument("--library", default="CMOS3")
    parser.add_argument(
        "--repeats", type=int, default=3, help="warm requests per benchmark"
    )
    parser.add_argument(
        "--depth", type=int, default=5, help="cluster-enumeration depth"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the warm-run repro-bench-mapping/v1 snapshot here",
    )
    args = parser.parse_args(argv)

    # Factory-fresh libraries so the cold request really is cold.
    clear_library_cache()
    for factory in standard.ALL_LIBRARIES.values():
        factory.cache_clear()

    config = ServiceConfig(
        port=0, backend="threads", workers=1, cache_dir=anncache.DISABLED
    )
    rows = []
    snapshot_rows: dict[str, dict] = {}
    cold_annotate = 0.0
    with MappingService(config).running() as service:
        client = ServiceClient(service.url)
        client.wait_ready()
        for index, name in enumerate(args.benchmarks):
            request = MapRequest(
                design=name,
                library=args.library,
                max_depth=args.depth,
                verify=True,
            )
            start = time.perf_counter()
            cold = client.map(request)
            cold_wall = time.perf_counter() - start
            if index == 0:
                if cold.annotate_source != "cold":
                    _fail(
                        f"first request reported annotation source "
                        f"{cold.annotate_source!r}, expected 'cold'"
                    )
                cold_annotate = cold.annotate_seconds

            warm_walls = []
            warm = cold
            for _ in range(args.repeats):
                start = time.perf_counter()
                warm = client.map(request)
                warm_walls.append(time.perf_counter() - start)
                if warm.annotate_seconds != 0.0 or warm.annotate_source:
                    _fail(
                        f"warm request for {name} did annotation work "
                        f"({warm.annotate_seconds}s, "
                        f"source={warm.annotate_source!r})"
                    )
            if warm.blif != cold.blif or warm.digest != cold.digest:
                _fail(f"warm response for {name} drifted from the cold one")

            # Byte-identity vs a cold one-shot run outside the service.
            reference = map_network(
                name,
                args.library,
                MappingOptions(max_depth=args.depth),
                mode="async",
            )
            if warm.blif != netlist_blif(reference.mapped):
                _fail(
                    f"served netlist for {name} differs from a one-shot "
                    f"map_network run"
                )

            rows.append(
                (
                    name,
                    f"{cold_wall:.3f}s",
                    f"{min(warm_walls):.3f}s",
                    f"{warm.map_seconds:.3f}s",
                    f"{cold_wall / min(warm_walls):.1f}x"
                    if min(warm_walls) > 0
                    else "-",
                )
            )
            snapshot_rows[name] = {
                "map_seconds": warm.map_seconds,
                "area": warm.area,
                "delay": warm.delay,
                "cells": warm.cells,
                "cell_usage": warm.cell_usage,
                "cones": warm.cones,
                "matches": warm.matches,
                "filter_invocations": warm.filter_invocations,
                "verify": warm.verify,
            }

        metrics = client.metrics()["metrics"]
        calls = metrics.get("library.annotate.calls", {}).get("value", 0)
        total = metrics.get("service.requests.map", {}).get("value", 0)

    if calls != 1:
        _fail(
            f"library.annotate.calls is {calls} after {total} requests; "
            "the warm service must annotate exactly once"
        )

    print(
        render_table(
            ["Benchmark", "Cold", "Warm best", "Warm map", "Speedup"],
            rows,
            title=(
                f"Warm-vs-cold serving ({args.library}, depth {args.depth}; "
                f"{total} requests, 1 annotation)"
            ),
        )
    )
    print(
        f"annotation: paid once ({cold_annotate:.3f}s on the cold request), "
        f"amortized over {total} requests; library.annotate.calls={calls}"
    )

    if args.output:
        snapshot = {
            "schema": BENCH_SCHEMA,
            "library": args.library,
            "workers": 1,
            "max_depth": args.depth,
            "annotate_seconds": cold_annotate,
            "annotate_source": "cold",
            "benchmarks": snapshot_rows,
        }
        write_bench_snapshot(args.output, snapshot)
        print(f"warm-serving snapshot written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
