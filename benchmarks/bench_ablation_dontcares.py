"""Ablation — hazard don't-cares during mapping (paper section 6).

The paper's conclusions propose exploiting *hazard don't care*
information "as a means to improve the quality of the mapped circuit":
a hazardous cell whose extra hazards fall only on input bursts the
machine never issues is safe to use.  This bench quantifies the
extension on the mux-built Actel library, where the plain filter
rejects nearly every hazardous-cell match, and proves the relaxation is
sound by replaying every specified burst on the mapped structures.
"""

from repro.boolean.paths import label_expression
from repro.burstmode.benchmarks import synthesize_benchmark
from repro.hazards.oracle import classify_transition
from repro.mapping.dontcare import synthesis_bursts
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.reporting import render_table

from .conftest import emit

DESIGNS = ["dme-fast", "pe-send-ifc", "oscsi-ctrl", "abcs"]


def _specified_bursts_clean(synthesis, mapped) -> bool:
    for target in synthesis.equations:
        lsop = label_expression(mapped.collapse(target), synthesis.variables)
        for spec_t in synthesis.transitions[target]:
            if classify_transition(lsop, spec_t.start, spec_t.end).logic_hazard:
                return False
    return True


def test_ablation_hazard_dont_cares(annotated_libraries, benchmark):
    library = annotated_libraries["ACTEL"]
    rows = []
    total_waived = 0
    for name in DESIGNS:
        synthesis = synthesize_benchmark(name)
        net = synthesis.netlist(name)
        plain = async_tmap(net, library)
        relaxed = async_tmap(
            net,
            library,
            MappingOptions(input_bursts=synthesis_bursts(synthesis)),
        )
        assert relaxed.mapped.equivalent(net), name
        assert relaxed.area <= plain.area, name
        assert _specified_bursts_clean(synthesis, relaxed.mapped), name
        total_waived += relaxed.stats.dc_waivers
        rows.append(
            (
                name,
                f"{plain.area:.0f}",
                f"{relaxed.area:.0f}",
                relaxed.stats.hazard_accepts - plain.stats.hazard_accepts,
                relaxed.stats.dc_waivers,
                "clean",
            )
        )

    emit(
        "ablation_dontcares",
        render_table(
            [
                "Design",
                "Area (strict)",
                "Area (don't-cares)",
                "Extra accepts",
                "Hazards waived",
                "Specified bursts",
            ],
            rows,
            title="Ablation — hazard don't-cares during mapping (ACTEL)",
        ),
    )
    assert total_waived > 0

    synthesis = synthesize_benchmark("dme-fast")
    net = synthesis.netlist("dme-fast")
    options = MappingOptions(input_bursts=synthesis_bursts(synthesis))
    benchmark.pedantic(
        lambda: async_tmap(net, library, options), rounds=1, iterations=1
    )
