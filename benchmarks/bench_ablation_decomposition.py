"""Ablation — decomposition discipline (section 3.1.1).

Compares ``async_tech_decomp`` (associative + DeMorgan only) with the
synchronous ``tech_decomp`` (which also simplifies): across a corpus of
consensus-bearing hazard-free covers, the synchronous step repeatedly
manufactures static-1 hazards, while the asynchronous step never
changes hazard behaviour.
"""

import random

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.minimize import make_hazard_free_static
from repro.hazards.static1 import has_static1_hazard
from repro.network.decompose import async_tech_decomp, tech_decomp
from repro.network.netlist import Netlist, cover_to_expr
from repro.reporting import render_table

from .conftest import emit

NVARS = 4
NAMES = ["a", "b", "c", "d"]


def corpus(count=40, seed=11):
    rng = random.Random(seed)
    covers = []
    while len(covers) < count:
        cubes = []
        for __ in range(rng.randint(2, 4)):
            used = rng.randint(1, (1 << NVARS) - 1)
            phase = rng.randint(0, (1 << NVARS) - 1)
            cubes.append(Cube(used, phase, NVARS))
        cover = Cover(cubes, NVARS).dedup()
        try:
            repaired = make_hazard_free_static(cover)
        except RuntimeError:
            continue
        # Constant or single-gate functions have nothing to decompose.
        if len(repaired) < 2 or any(c.is_universe() for c in repaired):
            continue
        covers.append(repaired)
    return covers


def flattened_static1(netlist):
    return has_static1_hazard(netlist.collapse("f").to_cover(NAMES))


def test_ablation_decomposition(benchmark):
    async_broken = 0
    sync_broken = 0
    total = 0
    for cover in corpus():
        net = Netlist("f")
        for name in NAMES:
            net.add_input(name)
        gate = net.add_gate("g", cover_to_expr(cover, NAMES), NAMES)
        net.add_output("f", gate)
        total += 1
        if flattened_static1(async_tech_decomp(net)):
            async_broken += 1
        if flattened_static1(tech_decomp(net)):
            sync_broken += 1

    emit(
        "ablation_decomposition",
        render_table(
            ["Decomposition", "Hazard-free inputs", "Static-1 introduced"],
            [
                ("async_tech_decomp", total, async_broken),
                ("tech_decomp (simplifying)", total, sync_broken),
            ],
            title="Ablation — decomposition discipline vs introduced hazards",
        ),
    )

    assert async_broken == 0
    assert sync_broken > 0

    sample = corpus(count=1)[0]
    net = Netlist("f")
    for name in NAMES:
        net.add_input(name)
    gate = net.add_gate("g", cover_to_expr(sample, NAMES), NAMES)
    net.add_output("f", gate)
    benchmark(lambda: async_tech_decomp(net))
