#!/usr/bin/env python
"""Gate a fresh ``repro perf`` snapshot against the committed baseline.

Usage::

    PYTHONPATH=src python -m repro perf --benchmarks chu-ad-opt vanbek-opt \
        --output /tmp/fresh.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline BENCH_mapping.json --fresh /tmp/fresh.json \
        [--tolerance 0.20] [--min-seconds 0.05]

Exit status 0 when the fresh snapshot matches the baseline (quality
fields exactly, timings within tolerance), 1 with a problem listing
otherwise.  CI runs this with ``--tolerance 2.0 --min-seconds 1.0`` so
shared-runner jitter cannot fail the gate; the defaults are meant for
local runs.  Comparison policy lives in
:mod:`repro.obs.regression`; regenerate the baseline with
``python -m repro perf --output BENCH_mapping.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import load_bench_snapshot  # noqa: E402
from repro.obs.regression import (  # noqa: E402
    DEFAULT_MIN_SECONDS,
    DEFAULT_TOLERANCE,
    compare_snapshots,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_mapping.json"),
        help="committed baseline snapshot (default: repo-root BENCH_mapping.json)",
    )
    parser.add_argument("--fresh", required=True, help="snapshot of the fresh run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative slowdown allowed before failing (default 0.20 = +20%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="absolute slowdown ignored regardless of percentage (default 0.05)",
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help="allow the fresh run to cover only a subset of the baseline's "
        "benchmarks (the CI smoke gate runs the two smallest)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        help="restrict the comparison to these benchmark names (implies "
        "--subset); a name absent from either snapshot is a clear, "
        "non-zero-exit error",
    )
    args = parser.parse_args(argv)

    baseline = load_bench_snapshot(args.baseline)
    fresh = load_bench_snapshot(args.fresh)
    if args.benchmarks:
        # Fail loudly (not with a KeyError) when a requested name is in
        # neither snapshot — a typo'd gate must not pass vacuously.
        missing_base = sorted(
            set(args.benchmarks) - set(baseline.get("benchmarks", {}))
        )
        missing_fresh = sorted(
            set(args.benchmarks) - set(fresh.get("benchmarks", {}))
        )
        if missing_base or missing_fresh:
            print("regression check FAILED: requested benchmark(s) missing:")
            for name in missing_base:
                print(
                    f"  ! {name}: absent from baseline {args.baseline} "
                    f"(regenerate the baseline or fix the name)"
                )
            for name in missing_fresh:
                if name not in missing_base:
                    print(f"  ! {name}: absent from fresh {args.fresh}")
            return 1
        for snapshot in (baseline, fresh):
            snapshot["benchmarks"] = {
                name: entry
                for name, entry in snapshot["benchmarks"].items()
                if name in args.benchmarks
            }
        args.subset = True
    problems = compare_snapshots(
        baseline,
        fresh,
        tolerance=args.tolerance,
        min_seconds=args.min_seconds,
        subset=args.subset,
    )
    if problems:
        print(f"regression check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  ! {problem}")
        return 1
    benchmarks = sorted(fresh.get("benchmarks", {}))
    print(
        f"regression check passed: {len(benchmarks)} benchmark(s) "
        f"[{', '.join(benchmarks)}] match the baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
