"""Overhead of the observability layer on the Table-5 workload.

The tracing/metrics design budget is <5% overhead with tracing
*disabled* (the default: every instrumented call site sees
``NULL_TRACER``, a shared no-op context manager).  This harness
measures three configurations over a mid-sized slice of the Table-5
catalog and reports relative cost:

* ``baseline``  — no tracer, no registry (post-instrumentation default);
* ``metrics``   — a live ``MetricsRegistry`` (absorbed once per run);
* ``traced``    — a live ``Tracer`` recording the full span tree;
* ``logged``    — tracer plus a live ``repro-log/v1`` event handler
  (the ``--log FILE`` configuration, events written to disk);
* ``explain``   — the full decision-provenance recorder
  (``MappingOptions(explain=True)``), including witness extraction for
  every hazard rejection.

The explain layer's own budget is stricter: <1% with explain *disabled*
(the baseline row — its hot path is one ``explain is None`` check per
match), which is what the per-match gating buys.  Enabled explain is
allowed to cost real time; it does work proportional to the number of
candidates examined.

The claims are asserted as a *note* in the emitted table, not as a
pytest assertion — wall-clock ratios on shared CI hardware are exactly
the kind of flaky gate ``check_regression.py`` was designed to avoid.
Run locally with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.hazards.cache import clear_global_cache
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.obs.log import event_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.reporting import render_table

from .conftest import emit

#: Mid-sized slice: large enough for stable ratios, small enough to run
#: in a couple of seconds per repeat.
WORKLOAD = ("dme-fast", "pe-send-ifc", "oscsi-ctrl", "abcs")
REPEATS = 3


def run_workload(
    annotated_libraries, tracer=None, metrics=None, explain=False
) -> float:
    library = annotated_libraries["CMOS3"]
    start = time.perf_counter()
    for name in WORKLOAD:
        clear_global_cache()
        net = synthesize_benchmark(name).netlist(name)
        async_tmap(
            net,
            library,
            MappingOptions(tracer=tracer, metrics=metrics, explain=explain),
        )
    return time.perf_counter() - start


def run_logged(annotated_libraries, log_path) -> float:
    """The ``--log FILE`` configuration: tracer plus live event handler."""
    with event_log(log_path):
        return run_workload(annotated_libraries, tracer=Tracer())


def test_observability_overhead(annotated_libraries, tmp_path):
    configs = {
        "baseline": lambda: run_workload(annotated_libraries),
        "metrics": lambda: run_workload(
            annotated_libraries, metrics=MetricsRegistry()
        ),
        "traced": lambda: run_workload(annotated_libraries, tracer=Tracer()),
        "logged": lambda: run_logged(
            annotated_libraries, tmp_path / "events.jsonl"
        ),
        "explain": lambda: run_workload(annotated_libraries, explain=True),
    }
    timings = {name: [] for name in configs}
    for _ in range(REPEATS):
        for name, runner in configs.items():
            timings[name].append(runner())

    best = {name: min(values) for name, values in timings.items()}
    rows = []
    for name in configs:
        ratio = best[name] / best["baseline"] - 1.0
        rows.append([name, f"{best[name]:.3f}s", f"{ratio * +100.0:+.1f}%"])

    note = (
        "Budget: disabled-path (baseline vs pre-instrumentation) overhead "
        "<5%; explain-disabled overhead <1%.  The baseline row IS both\n"
        "disabled paths — all call sites run against NULL_TRACER/no "
        "registry, and the covering DP pays one `explain is None` check\n"
        "per match.  Enabled tracing stays cheap because spans are "
        "per-phase/per-cone; enabled explain does per-candidate work\n"
        "(records plus witness extraction per hazard rejection), so its "
        "row is expected to cost real time.  The logged row shares the "
        "traced budget: events fire per run (map.done), never per cone\n"
        "or per match, so an attached --log handler stays in the noise."
    )
    emit(
        "obs_overhead",
        render_table(
            ["Config", "Best of 3", "vs baseline"],
            rows,
            title="Observability overhead on a Table-5 slice (CMOS3, depth 5)",
        )
        + "\n\n"
        + note,
    )
