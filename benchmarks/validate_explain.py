"""Validate a ``repro-explain/v1`` artifact (the CI perf-smoke gate).

Checks, in order:

1. the payload loads and carries the right schema stamp;
2. the summary is consistent with the recorded candidates — every
   hazard-filter invocation is explained and every hazard rejection
   carries a reason plus a witness (``validate_explain_payload``);
3. every witness actually glitches when replayed on the event
   simulator against its cell's path-labelled implementation
   (``verify_explain_witnesses``), using the library named in the
   payload.

Usage::

    PYTHONPATH=src python benchmarks/validate_explain.py EXPLAIN.json

Exits nonzero with a one-line diagnosis on the first failure.
"""

from __future__ import annotations

import sys


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: validate_explain.py EXPLAIN.json", file=sys.stderr
        )
        return 2
    path = argv[1]

    from repro.library.standard import ALL_LIBRARIES, load_library
    from repro.obs.explain import (
        validate_explain_payload,
        verify_explain_witnesses,
    )
    from repro.obs.export import load_explain

    try:
        payload = load_explain(path)
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    try:
        summary = validate_explain_payload(payload)
    except ValueError as exc:
        print(f"FAIL: schema violation: {exc}", file=sys.stderr)
        return 1

    replayed = 0
    library_name = payload.get("library", "")
    if library_name in ALL_LIBRARIES:
        library = load_library(library_name)
        try:
            replayed = verify_explain_witnesses(payload, library)
        except ValueError as exc:
            print(f"FAIL: witness replay: {exc}", file=sys.stderr)
            return 1
    elif summary.get("rejected_hazard", 0):
        print(
            f"FAIL: payload has hazard rejections but library "
            f"{library_name!r} is not loadable for witness replay",
            file=sys.stderr,
        )
        return 1

    print(
        f"OK: {path}: {summary['candidates']} candidates over "
        f"{summary['cones']} cones, "
        f"{summary['filter_invocations']} filter invocations explained, "
        f"{summary['rejected_hazard']} hazard rejections, "
        f"{replayed} witness(es) replayed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
