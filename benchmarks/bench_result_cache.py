#!/usr/bin/env python
"""Cold-vs-warm batch benchmark for the content-addressed result cache.

Runs the catalog through ``repro batch`` three times on the same
machine:

1. **baseline** — result cache disabled (the reference netlists);
2. **cold**     — result cache enabled against an empty cache directory
   (pays full mapping, stores every response);
3. **warm**     — the same run again (every job replays a stored
   response).

and proves the whole-mapping-reuse claim end to end:

* every run's per-job netlist digests are **byte-identical** — the
  cache never changes a mapping, it only skips recomputing one;
* every warm record was actually served from the cache (``cached`` is
  ``memory`` or ``disk``);
* the warm run is at least ``--min-speedup`` times faster than the
  cold run (default 5x).

Both the cold and the warm run are recorded as
``repro-bench-mapping/v1`` snapshots so ``check_regression.py
--subset`` can gate their quality against the committed baseline.
Warm rows replay the stored responses verbatim, so their
``map_seconds`` are the *originating* (cold) timings — quality fields
are what the warm snapshot gates; the speedup is asserted on batch
wall-clock here::

    PYTHONPATH=src python benchmarks/bench_result_cache.py \
        --cold-output result_cache_cold.json \
        --warm-output result_cache_warm.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline BENCH_mapping.json --fresh result_cache_warm.json \
        --subset --tolerance 2.0 --min-seconds 1.0
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.batch import BatchConfig, BatchJob, run_batch  # noqa: E402
from repro.burstmode.benchmarks import TABLE5_ORDER  # noqa: E402
from repro.cache import resultcache  # noqa: E402
from repro.obs.export import write_bench_snapshot  # noqa: E402
from repro.reporting import render_table  # noqa: E402


def _fail(message: str) -> None:
    print(f"result-cache benchmark FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _digests(report) -> dict:
    return {r["job_id"]: r.get("digest") for r in report.results}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(TABLE5_ORDER),
        help="designs to map (default: the full Table-5 catalog)",
    )
    parser.add_argument("--library", default="CMOS3")
    parser.add_argument(
        "--depth", type=int, default=5, help="cluster-enumeration depth"
    )
    parser.add_argument(
        "--backend",
        default="processes",
        choices=("serial", "threads", "processes"),
        help="batch executor backend (default: processes)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="batch fan-out (0 = one per CPU core)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required cold/warm wall-clock ratio (default: 5.0)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="reuse this cache directory instead of a fresh tempdir",
    )
    parser.add_argument(
        "--cold-output",
        default=None,
        metavar="FILE",
        help="write the cold-run repro-bench-mapping/v1 snapshot here",
    )
    parser.add_argument(
        "--warm-output",
        default=None,
        metavar="FILE",
        help="write the warm-run repro-bench-mapping/v1 snapshot here",
    )
    args = parser.parse_args(argv)

    def jobs():
        # verify=True so rows carry verdicts and the snapshots gate
        # cleanly against the committed (verified) baseline; warm runs
        # replay the stored verdicts without re-verifying.
        return [
            BatchJob(
                design=name,
                library=args.library,
                max_depth=args.depth,
                verify=True,
            )
            for name in args.benchmarks
        ]

    def run(label: str, cache_dir: str, cached: bool):
        report = run_batch(
            jobs(),
            BatchConfig(
                backend=args.backend,
                workers=args.workers,
                cache_dir=cache_dir,
                result_cache=cached,
            ),
        )
        if not report.ok:
            _fail(f"{label} run did not complete cleanly: {report.counts()}")
        return report

    with tempfile.TemporaryDirectory(prefix="repro-result-cache-") as tmp:
        cache_dir = args.cache_dir or tmp
        resultcache.MEMORY.clear()

        # The baseline also warms the (shared) annotation cache, so the
        # cold run below pays mapping + store, nothing else — the
        # speedup measured here is the result cache's alone.
        baseline = run("baseline", cache_dir, cached=False)
        cold = run("cold", cache_dir, cached=True)
        warm = run("warm", cache_dir, cached=True)

        stored = len(resultcache.result_entries(cache_dir))

    reference = _digests(baseline)
    for label, report in (("cold", cold), ("warm", warm)):
        drifted = [
            job_id
            for job_id, digest in _digests(report).items()
            if digest != reference[job_id]
        ]
        if drifted:
            _fail(
                f"{label} run netlists drifted from the cache-disabled "
                f"baseline: {drifted}"
            )
    missed = [
        r["job_id"]
        for r in warm.results
        if r.get("cached") not in ("memory", "disk")
    ]
    if missed:
        _fail(f"warm run recomputed instead of replaying: {missed}")
    if stored < len(args.benchmarks):
        _fail(
            f"cold run stored {stored} entries for "
            f"{len(args.benchmarks)} jobs"
        )

    speedup = cold.elapsed / warm.elapsed if warm.elapsed > 0 else float("inf")
    print(
        render_table(
            ["Run", "Result cache", "Elapsed", "Jobs", "Speedup"],
            [
                ("baseline", "off", f"{baseline.elapsed:.3f}s", len(baseline.results), "-"),
                ("cold", "on (empty)", f"{cold.elapsed:.3f}s", len(cold.results), "-"),
                ("warm", "on (full)", f"{warm.elapsed:.3f}s", len(warm.results), f"{speedup:.1f}x"),
            ],
            title=(
                f"Result-cache batch reuse ({args.library}, depth "
                f"{args.depth}, {args.backend} backend)"
            ),
        )
    )
    print(
        f"netlists byte-identical across all three runs; "
        f"{stored} entries stored; warm speedup {speedup:.1f}x "
        f"(required {args.min_speedup:.1f}x)"
    )

    if speedup < args.min_speedup:
        _fail(
            f"warm run speedup {speedup:.2f}x is below the required "
            f"{args.min_speedup:.1f}x"
        )

    if args.cold_output:
        write_bench_snapshot(
            args.cold_output, cold.to_bench_snapshot(args.depth)
        )
        print(f"cold-run snapshot written to {args.cold_output}")
    if args.warm_output:
        write_bench_snapshot(
            args.warm_output, warm.to_bench_snapshot(args.depth)
        )
        print(f"warm-run snapshot written to {args.warm_output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
