#!/usr/bin/env python
"""CI smoke for the result cache: CLI twice, daemon once, one store.

Drives the content-addressed result cache end to end against a single
on-disk cache directory:

* a cold ``repro map --result-cache`` run populates the cache;
* a second CLI run (a fresh process, so the memory tier is empty)
  replays the stored response from disk, byte-identical;
* a live ``repro serve`` daemon answers the same request from the same
  cache, reports the ``cached`` tier on the wire, and exposes
  ``cache_result_hits_total >= 1`` plus the lookup-latency histogram in
  its Prometheus scrape;
* a deliberately truncated cache entry is detected, evicted, and
  recomputed — never served.

Any mismatch exits non-zero; CI uploads ``--workdir`` (cache directory
included) as an artifact on failure.

Usage::

    PYTHONPATH=src python benchmarks/cache_smoke.py \
        [--workdir cache_smoke_work]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import MapRequest  # noqa: E402
from repro.cache import resultcache  # noqa: E402
from repro.obs.export import parse_prometheus_text  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def _fail(message: str) -> None:
    print(f"cache smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _cli_map(cache_dir: Path, output: Path, design: str, library: str,
             depth: int) -> str:
    """One ``repro map --result-cache`` run in a fresh process."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "map", design, library,
            "--depth", str(depth),
            "--result-cache",
            "--cache-dir", str(cache_dir),
            "--output", str(output),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    if proc.returncode != 0:
        _fail(
            f"CLI map exited {proc.returncode}:\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        default="cache_smoke_work",
        help="scratch directory (cache + netlists; CI artifact on failure)",
    )
    parser.add_argument("--design", default="chu-ad-opt")
    parser.add_argument("--library", default="CMOS3")
    parser.add_argument("--depth", type=int, default=5)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    cache_dir = workdir / "cache"

    # 1. Cold CLI run populates the cache.
    out_cold = workdir / "cli_cold.blif"
    stdout = _cli_map(cache_dir, out_cold, args.design, args.library,
                      args.depth)
    if "result cache" in stdout:
        _fail(f"cold run claimed a cache hit:\n{stdout}")
    entries = resultcache.result_entries(str(cache_dir))
    if len(entries) != 1:
        _fail(f"cold run stored {len(entries)} entries, expected 1")
    entry_path = entries[0]

    # 2. Second CLI run (fresh process) must replay from disk.
    out_warm = workdir / "cli_warm.blif"
    stdout = _cli_map(cache_dir, out_warm, args.design, args.library,
                      args.depth)
    if "(result cache: disk hit)" not in stdout:
        _fail(f"second CLI run did not hit the disk tier:\n{stdout}")
    if out_warm.read_bytes() != out_cold.read_bytes():
        _fail("second CLI run's netlist drifted from the cold run")

    # 3. A live daemon against the same cache directory.
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        banner = daemon.stdout.readline().strip()
        if not banner.startswith("serving on http://"):
            _fail(f"bad daemon banner: {banner!r}")
        client = ServiceClient(banner.split()[-1])
        client.wait_ready(timeout=15)

        response = client.map(
            MapRequest(
                design=args.design,
                library=args.library,
                max_depth=args.depth,
                result_cache=True,
            )
        )
        if response.cached != "disk":
            _fail(
                f"daemon response cached={response.cached!r}, "
                "expected 'disk'"
            )
        if response.blif.encode() != out_cold.read_bytes():
            _fail("daemon netlist drifted from the CLI runs")

        scrape = client.metrics_prometheus()
        samples = parse_prometheus_text(scrape)["samples"]
        hits = samples.get("cache_result_hits_total", 0)
        if hits < 1:
            _fail(
                f"Prometheus scrape reports cache_result_hits_total="
                f"{hits!r}, expected >= 1"
            )
        if "cache_result_lookup_seconds" not in scrape:
            _fail("lookup-latency histogram missing from the scrape")

        health = client.health()
        if health.get("result_cache", {}).get("disk_entries") != 1:
            _fail(f"daemon /healthz result_cache wrong: {health!r}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=15)
        except subprocess.TimeoutExpired:
            daemon.kill()
            _fail("daemon did not drain on SIGTERM")
    if daemon.returncode != 0:
        _fail(f"daemon exited {daemon.returncode}: {daemon.stderr.read()}")

    # 4. A truncated entry must be evicted and recomputed, never served.
    entry_path.write_text(entry_path.read_text()[:64])
    out_again = workdir / "cli_recomputed.blif"
    stdout = _cli_map(cache_dir, out_again, args.design, args.library,
                      args.depth)
    if "result cache" in stdout:
        _fail(f"truncated entry was served as a hit:\n{stdout}")
    if out_again.read_bytes() != out_cold.read_bytes():
        _fail("recomputed netlist drifted after corruption")
    entry = json.loads(entry_path.read_text())  # re-stored, valid again
    if entry.get("key") != entry_path.stem:
        _fail("re-stored entry is not self-describing")

    print(
        "cache smoke passed: cold CLI store, warm CLI disk hit, daemon "
        f"disk hit (cache_result_hits_total={hits}), corrupt entry "
        "evicted and recomputed; netlists byte-identical throughout"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
